//! E16 — how tight is the safety-level approximation?
//!
//! Safety levels are a `Θ(n)`-round, `Θ(n)`-bit approximation of the
//! exact "guaranteed optimal radius" `r(a)` (which costs `Θ(n · 4ⁿ)`
//! to know). Theorem 2 gives `S(a) ≤ r(a)`; this sweep measures the
//! slack, plus the routing-level consequence: how many pairs does the
//! source-side feasibility check refuse even though an optimal path
//! exists (conservative misses)?

use crate::table::{f2, pct, Report};
use hypersafe_core::{source_decision, tightness, Decision, ExactReach, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{mean, random_pair, uniform_faults, Sweep};

/// Parameters for the tightness sweep.
#[derive(Clone, Copy, Debug)]
pub struct TightnessParams {
    /// Cube dimension (exact oracle: keep ≤ 9 for sane runtimes).
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Fault-count step.
    pub step: usize,
    /// Instances per point.
    pub trials: u32,
    /// Unicast pairs per instance for the conservatism measure.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for TightnessParams {
    fn default() -> Self {
        TightnessParams {
            n: 7,
            max_faults: 14,
            step: 2,
            trials: 60,
            pairs_per_instance: 10,
            seed: 0x7167,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &TightnessParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "tightness",
        format!(
            "safety level vs exact radius, {}-cube, {} instances/point",
            p.n, p.trials
        ),
        &[
            "faults",
            "tight_nodes",
            "mean_slack",
            "max_slack",
            "violations",
            "conservative_misses",
        ],
    );
    let mut m = 0usize;
    loop {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let rows: Vec<(u64, u64, f64, u8, u64, u64, u64)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            let t = tightness(&cfg, &map, &ex);
            // Conservatism at the routing level: feasibility says
            // Failure but an optimal path exists.
            let mut conservative = 0u64;
            let mut pairs = 0u64;
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                pairs += 1;
                if matches!(source_decision(&map, s, d), Decision::Failure)
                    && ex.optimal_path_exists(s, d)
                {
                    conservative += 1;
                }
            }
            (
                t.nodes,
                t.tight,
                t.mean_slack,
                t.max_slack,
                t.violations,
                conservative,
                pairs,
            )
        });
        let nodes: u64 = rows.iter().map(|r| r.0).sum();
        let tight: u64 = rows.iter().map(|r| r.1).sum();
        let slack = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let max_slack = rows.iter().map(|r| r.3).max().unwrap_or(0);
        let violations: u64 = rows.iter().map(|r| r.4).sum();
        let misses: u64 = rows.iter().map(|r| r.5).sum();
        let pairs: u64 = rows.iter().map(|r| r.6).sum();
        assert_eq!(violations, 0, "Theorem 2: S(a) ≤ r(a) always");
        rep.row(vec![
            m.to_string(),
            pct(tight, nodes),
            f2(slack),
            max_slack.to_string(),
            violations.to_string(),
            pct(misses, pairs),
        ]);
        if m >= p.max_faults {
            break;
        }
        m = (m + p.step).min(p.max_faults);
    }
    rep.note("S(a) never exceeded the exact radius (Theorem 2, oracle-checked)".to_string());
    rep.note(
        "conservative_misses: pairs refused by C1–C3 although an optimal path exists — \
              the price of n−1-round computability"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_is_perfectly_tight() {
        let p = TightnessParams {
            n: 5,
            max_faults: 0,
            step: 1,
            trials: 5,
            pairs_per_instance: 4,
            seed: 3,
        };
        let rep = run(&p);
        assert_eq!(rep.rows[0][1], "100.0%");
        assert_eq!(rep.rows[0][2], "0.00");
        assert_eq!(rep.rows[0][5], "0.0%");
    }

    #[test]
    fn slack_appears_with_faults_but_no_violations() {
        let p = TightnessParams {
            n: 6,
            max_faults: 8,
            step: 4,
            trials: 20,
            pairs_per_instance: 5,
            seed: 4,
        };
        let rep = run(&p);
        for row in &rep.rows {
            assert_eq!(row[4], "0", "violations must be zero: {row:?}");
        }
        // At 8 faults some slack should exist.
        let last_slack: f64 = rep.rows.last().unwrap()[2].parse().unwrap();
        assert!(last_slack >= 0.0);
    }
}
