//! E15 — faulty links at scale (§4.1 beyond the Fig. 4 example):
//! sweeping the number of faulty links, how large does the `N2` class
//! grow, how much of the cube still advertises useful levels, and how
//! do EGS unicasts fare.

use crate::table::{f2, pct, Report};
use hypersafe_core::{route_egs, run_egs, Decision};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{mean, random_pair, uniform_faults, uniform_link_faults, Sweep};

/// Parameters for the link-fault sweep.
#[derive(Clone, Copy, Debug)]
pub struct LinkFaultParams {
    /// Cube dimension.
    pub n: u8,
    /// Fixed number of faulty nodes per instance.
    pub node_faults: usize,
    /// Largest number of faulty links (inclusive).
    pub max_links: usize,
    /// Link-count step.
    pub step: usize,
    /// Instances per point.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for LinkFaultParams {
    fn default() -> Self {
        LinkFaultParams {
            n: 7,
            node_faults: 2,
            max_links: 12,
            step: 2,
            trials: 200,
            pairs_per_instance: 8,
            seed: 0x11C5,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &LinkFaultParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "linkfaults",
        format!(
            "faulty links (EGS), {}-cube with {} node faults, {} instances/point",
            p.n, p.node_faults, p.trials
        ),
        &[
            "links",
            "n2_mean",
            "adv_safe_frac",
            "delivered",
            "aborted",
            "lost",
        ],
    );
    let mut l = 0usize;
    loop {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(l as u64));
        let rows: Vec<(f64, f64, u32, u32, u32)> = sweep.run(|_, rng| {
            let nodes = uniform_faults(cube, p.node_faults, rng);
            let links = uniform_link_faults(cube, l, rng);
            let cfg = FaultConfig::with_faults(cube, nodes, links);
            let (emap, _) = run_egs(&cfg);
            let n2 = cube.nodes().filter(|&a| emap.is_n2(a)).count() as f64;
            let healthy = cfg.healthy_count() as f64;
            let adv_safe = cfg
                .healthy_nodes()
                .filter(|&a| emap.advertised_level(a) == cube.dim())
                .count() as f64
                / healthy;
            let mut delivered = 0u32;
            let mut aborted = 0u32;
            let mut lost = 0u32;
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                let res = route_egs(&cfg, &emap, s, d);
                if matches!(res.decision, Decision::Failure) {
                    aborted += 1;
                } else if res.delivered {
                    delivered += 1;
                } else {
                    lost += 1;
                }
            }
            (n2, adv_safe, delivered, aborted, lost)
        });
        let n2 = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let adv = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let delivered: u64 = rows.iter().map(|r| r.2 as u64).sum();
        let aborted: u64 = rows.iter().map(|r| r.3 as u64).sum();
        let lost: u64 = rows.iter().map(|r| r.4 as u64).sum();
        let total = delivered + aborted + lost;
        rep.row(vec![
            l.to_string(),
            f2(n2),
            f2(adv),
            pct(delivered, total),
            pct(aborted, total),
            pct(lost, total),
        ]);
        if l >= p.max_links {
            break;
        }
        l = (l + p.step).min(p.max_links);
    }
    rep.note(
        "each faulty link converts up to two healthy nodes into N2 (advertised level 0)"
            .to_string(),
    );
    rep.note(
        "treating link-fault ends as node faults is conservative: feasibility detection \
              stays local, at the cost of refusing some servable pairs"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_links_matches_plain_gs_world() {
        let p = LinkFaultParams {
            n: 5,
            node_faults: 2,
            max_links: 0,
            step: 1,
            trials: 30,
            pairs_per_instance: 4,
            seed: 6,
        };
        let rep = run(&p);
        assert_eq!(rep.rows[0][1], "0.00", "no N2 nodes without link faults");
        assert_eq!(
            rep.rows[0][3], "100.0%",
            "n−1 node faults regime delivers everything"
        );
    }

    #[test]
    fn n2_grows_with_link_count() {
        let p = LinkFaultParams {
            n: 6,
            node_faults: 1,
            max_links: 6,
            step: 3,
            trials: 40,
            pairs_per_instance: 4,
            seed: 7,
        };
        let rep = run(&p);
        let n2_first: f64 = rep.rows[0][1].parse().unwrap();
        let n2_last: f64 = rep.rows.last().unwrap()[1].parse().unwrap();
        assert!(n2_last > n2_first);
    }
}
