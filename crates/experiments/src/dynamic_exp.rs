//! E13 — unicasting under mid-flight fault arrivals (§2.2's
//! demand-driven reroute, made quantitative): how often an in-flight
//! message survives `k` random fault arrivals, and what the
//! re-stabilizations cost.

use crate::table::{f2, pct, Report};
use hypersafe_core::{route_dynamic, DynamicOutcome, FaultEvent};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{mean, random_pair, uniform_faults, Sweep};
use rand::Rng;

/// Parameters for the dynamic-fault sweep.
#[derive(Clone, Copy, Debug)]
pub struct DynamicParams {
    /// Cube dimension.
    pub n: u8,
    /// Initial (static) fault count.
    pub initial_faults: usize,
    /// Largest number of mid-flight fault arrivals.
    pub max_arrivals: usize,
    /// Trials per arrival count.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for DynamicParams {
    fn default() -> Self {
        DynamicParams {
            n: 7,
            initial_faults: 3,
            max_arrivals: 4,
            trials: 400,
            seed: 0xD14A,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &DynamicParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "dynamic",
        format!(
            "mid-flight fault arrivals, {}-cube with {} initial faults, {} trials/point",
            p.n, p.initial_faults, p.trials
        ),
        &[
            "arrivals",
            "delivered",
            "aborted",
            "lost_to_fault",
            "mean_restab",
            "mean_gs_msgs",
            "mean_detour",
        ],
    );
    for k in 0..=p.max_arrivals {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(k as u64));
        let rows: Vec<(u32, u32, u32, f64, f64, f64)> = sweep.run(|_, rng| {
            let faults = uniform_faults(cube, p.initial_faults, rng);
            let cfg = FaultConfig::with_node_faults(cube, faults.clone());
            let (s, d) = random_pair(&cfg, rng);
            // k fault arrivals at random hop offsets, striking random
            // currently-healthy nodes other than s and d.
            let mut events: Vec<FaultEvent> = Vec::with_capacity(k);
            let mut struck: Vec<NodeId> = Vec::new();
            for _ in 0..k {
                let node = loop {
                    let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                    if v != s && v != d && !cfg.node_faulty(v) && !struck.contains(&v) {
                        break v;
                    }
                };
                struck.push(node);
                events.push(FaultEvent {
                    after_hop: rng.gen_range(1..=p.n as u32),
                    node,
                });
            }
            events.sort_by_key(|e| e.after_hop);
            let run = route_dynamic(cube, &faults, &events, s, d);
            match run.outcome {
                DynamicOutcome::Delivered => {
                    let detour = run.path.len() as f64 - s.distance(d) as f64;
                    (
                        1,
                        0,
                        0,
                        run.restabilizations as f64,
                        run.gs_messages as f64,
                        detour,
                    )
                }
                DynamicOutcome::AbortedAt(_) | DynamicOutcome::InfeasibleAtSource => (
                    0,
                    1,
                    0,
                    run.restabilizations as f64,
                    run.gs_messages as f64,
                    0.0,
                ),
                DynamicOutcome::DestinationFailed | DynamicOutcome::HolderFailed(_) => (
                    0,
                    0,
                    1,
                    run.restabilizations as f64,
                    run.gs_messages as f64,
                    0.0,
                ),
            }
        });
        let delivered: u64 = rows.iter().map(|r| r.0 as u64).sum();
        let aborted: u64 = rows.iter().map(|r| r.1 as u64).sum();
        let dest: u64 = rows.iter().map(|r| r.2 as u64).sum();
        let total = delivered + aborted + dest;
        let restab = mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        let gsmsg = mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>());
        let detours: Vec<f64> = rows.iter().filter(|r| r.0 == 1).map(|r| r.5).collect();
        rep.row(vec![
            k.to_string(),
            pct(delivered, total),
            pct(aborted, total),
            pct(dest, total),
            f2(restab),
            f2(gsmsg),
            f2(mean(&detours)),
        ]);
    }
    rep.note("each re-stabilization is one full GS run, charged in exchange messages".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_arrivals_matches_static_guarantees() {
        let p = DynamicParams {
            n: 6,
            initial_faults: 3,
            max_arrivals: 0,
            trials: 50,
            seed: 1,
        };
        let rep = run(&p);
        assert_eq!(
            rep.rows[0][1], "100.0%",
            "static < n faults regime never fails"
        );
        assert_eq!(rep.rows[0][4], "0.00", "no restabilizations without churn");
    }

    #[test]
    fn survival_degrades_gracefully() {
        let p = DynamicParams {
            n: 6,
            initial_faults: 2,
            max_arrivals: 3,
            trials: 80,
            seed: 2,
        };
        let rep = run(&p);
        let first: f64 = rep.rows[0][1].trim_end_matches('%').parse().unwrap();
        let last: f64 = rep.rows.last().unwrap()[1]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(first >= last, "more churn, no better delivery");
        assert!(last > 50.0, "rerouting keeps most messages alive");
    }
}
