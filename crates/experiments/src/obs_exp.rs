//! E25 — observability snapshot (`repro obs`): run the reliable
//! GS + unicast stack with the [`hypersafe_simkit::obs`] metrics
//! registry installed, aggregate per-node / per-dimension counters and
//! the latency/hop/quiescence histograms across a seeded sweep, and
//! export the merged [`MetricsSnapshot`] as `obs_metrics.json` /
//! `obs_metrics.csv` — the machine-readable companion to the other
//! experiments' CSVs (CI validates the JSON against
//! `tests/goldens/obs_schema.json`). Also demonstrates the
//! [`FlightRecorder`]: a bounded ring that keeps the *last N* trace
//! events of a run instead of an unbounded trace.

use crate::table::{f2, Report};
use hypersafe_core::{route, run_gs_reliable_observed, run_unicast_lossy_observed, SafetyMap};
use hypersafe_simkit::{
    Actor, Ctx, EventEngine, FlightRecorder, HypercubeNet, Metrics, MetricsSnapshot, Network,
    Quantiles, ReliableConfig, Severity,
};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep, STANDARD_PROFILES};
use rand::Rng;
use std::path::PathBuf;

/// Parameters for the observability sweep.
#[derive(Clone, Debug)]
pub struct ObsParams {
    /// Cube dimension.
    pub n: u8,
    /// Faults per instance.
    pub faults: usize,
    /// Instances (one GS convergence each).
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Event budget per protocol run.
    pub event_budget: u64,
    /// Master seed.
    pub seed: u64,
    /// Where `obs_metrics.json` / `obs_metrics.csv` land.
    pub out_dir: PathBuf,
}

impl Default for ObsParams {
    fn default() -> Self {
        ObsParams {
            n: 6,
            faults: 4,
            trials: 12,
            pairs_per_instance: 4,
            event_budget: 2_000_000,
            seed: 0x0B5,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// The sweep's outcome: the renderable report plus the merged snapshot
/// (already written to disk when `out_dir` was writable).
pub struct ObsRun {
    /// Summary table: one row per histogram, notes carrying totals,
    /// per-dimension balance, and the flight-recorder demonstration.
    pub report: Report,
    /// The merged cross-trial snapshot.
    pub snapshot: MetricsSnapshot,
}

/// Flood used for the flight-recorder demonstration: enough traffic to
/// overflow a small ring, with kills mixed in so the severity filter
/// has something to keep.
struct Flood {
    neighbors: Vec<NodeId>,
    seen: bool,
}

impl Actor for Flood {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<()>) {
        if ctx.self_id() == NodeId::ZERO {
            self.seen = true;
            for i in 0..self.neighbors.len() {
                ctx.send(self.neighbors[i], (), 1);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {
        if !self.seen {
            self.seen = true;
            for i in 0..self.neighbors.len() {
                ctx.send(self.neighbors[i], (), 1);
            }
        }
    }
}

/// Floods an `n`-cube with a [`FlightRecorder`] of capacity `cap`
/// attached (Warn-and-above only, so the ring keeps kill notes rather
/// than drowning in per-hop Debug noise), killing a couple of nodes
/// mid-flood. Returns the recovered recorder.
fn flight_recorder_demo(n: u8, cap: usize) -> FlightRecorder {
    let cube = Hypercube::new(n);
    let cfg = FaultConfig::fault_free(cube);
    let net = HypercubeNet::new(&cfg);
    let mut eng = EventEngine::new(&net, |a| Flood {
        neighbors: (0..net.degree(a.raw()))
            .map(|p| NodeId::new(net.neighbor(a.raw(), p)))
            .collect(),
        seen: false,
    });
    // Every hop is recorded as Debug; keep everything so the ring
    // demonstrably overflows, then read back what survived.
    eng.set_trace(Box::new(
        FlightRecorder::new(cap).with_min_severity(Severity::Debug),
    ));
    eng.inject_kill(NodeId::new(1), 1);
    eng.inject_kill(NodeId::new(2), 2);
    eng.run(u64::MAX);
    eng.take_trace()
        .expect("recorder installed")
        .into_flight_recorder()
        .expect("FlightRecorder sink")
}

fn hist_row(rep: &mut Report, name: &str, q: &Quantiles) {
    rep.row(vec![
        name.to_string(),
        q.count.to_string(),
        f2(q.mean),
        q.p50.to_string(),
        q.p95.to_string(),
        q.p99.to_string(),
        q.max.to_string(),
    ]);
}

/// Runs the sweep; writes `obs_metrics.json` and `obs_metrics.csv`
/// into `p.out_dir`.
pub fn run(p: &ObsParams) -> ObsRun {
    let cube = Hypercube::new(p.n);
    let rcfg = ReliableConfig::default();
    // The "moderate" profile: loss + jitter + duplication all nonzero,
    // so every counter and histogram gets exercised.
    let prof = STANDARD_PROFILES
        .iter()
        .find(|pr| pr.name == "moderate")
        .expect("standard profile");
    let sweep = Sweep::new(p.trials, p.seed);
    let per_trial: Vec<Metrics> = sweep.run(|_, rng| {
        let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
        let central = SafetyMap::compute(&cfg);
        let (_, mut m) =
            run_gs_reliable_observed(&cfg, prof.channel(rng.gen()), rcfg, 1, p.event_budget);
        for _ in 0..p.pairs_per_instance {
            let (s, d) = random_pair(&cfg, rng);
            if s == d || !route(&cfg, &central, s, d).delivered {
                continue;
            }
            let (_, um) = run_unicast_lossy_observed(
                &cfg,
                &central,
                s,
                d,
                1,
                prof.channel(rng.gen()),
                rcfg,
                p.event_budget,
            );
            m.merge(&um);
        }
        m
    });
    let mut agg = Metrics::new(cube.num_nodes() as usize, p.n as usize);
    for m in &per_trial {
        agg.merge(m);
    }
    let snapshot = agg.snapshot();

    let mut rep = Report::new(
        "obs",
        format!(
            "observability snapshot: reliable GS + unicast, {}-cube, {} faults, {} instances, \
             '{}' channel profile",
            p.n, p.faults, p.trials, prof.name
        ),
        &["histogram", "count", "mean", "p50", "p95", "p99", "max"],
    );
    hist_row(&mut rep, "transit_latency(ticks)", &snapshot.latency);
    hist_row(&mut rep, "unicast_hops", &snapshot.hops);
    hist_row(&mut rep, "time_to_done(ticks)", &snapshot.rounds);
    let t = &snapshot.totals;
    rep.note(format!(
        "totals: sends={} delivered={} dropped={} lost={} duplicated={} retransmitted={} \
         acked={} timers={} (channel drew {} fate decisions)",
        t.sends,
        t.delivered,
        t.dropped,
        t.lost,
        t.duplicated,
        t.retransmitted,
        t.acked,
        t.timers,
        snapshot.channel_decisions
    ));
    let dim_sent: Vec<u64> = snapshot.per_dim.iter().map(|(_, d)| d.sent).collect();
    if let (Some(&max), Some(&min)) = (dim_sent.iter().max(), dim_sent.iter().min()) {
        rep.note(format!(
            "per-dimension send balance: min {min}, max {max} across {} dimensions \
             (GS announcements are symmetric; unicast load follows the fault geometry)",
            dim_sent.len()
        ));
    }
    rep.note(format!(
        "conservation check: delivered + dropped + lost = {} vs sends + duplicated = {}",
        t.delivered + t.dropped + t.lost,
        t.sends + t.duplicated
    ));
    let fr = flight_recorder_demo(p.n.min(5), 48);
    rep.note(format!(
        "flight recorder (cap 48, {}-cube flood with 2 kills): admitted {} events, kept the \
         last {}, evicted {}",
        p.n.min(5),
        fr.seen(),
        fr.seen() - fr.evicted(),
        fr.evicted()
    ));
    let json_path = p.out_dir.join("obs_metrics.json");
    let csv_path = p.out_dir.join("obs_metrics.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snapshot.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snapshot.to_csv()))
    {
        Ok(()) => rep.note(format!(
            "snapshot: {} and {}",
            json_path.display(),
            csv_path.display()
        )),
        Err(e) => rep.note(format!("snapshot write failed: {e}")),
    };
    ObsRun {
        report: rep,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ObsParams {
        ObsParams {
            n: 4,
            faults: 2,
            trials: 3,
            pairs_per_instance: 2,
            event_budget: 500_000,
            seed: 5,
            out_dir: std::env::temp_dir().join("hypersafe_obs_test"),
        }
    }

    #[test]
    fn snapshot_respects_conservation_and_is_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        let t = &a.snapshot.totals;
        assert_eq!(
            t.delivered + t.dropped + t.lost,
            t.sends + t.duplicated,
            "conservation law over the merged sweep"
        );
        assert!(t.sends > 0);
        assert!(a.snapshot.latency.count > 0);
        assert_eq!(a.snapshot.to_json(), b.snapshot.to_json());
        assert_eq!(a.report.rows, b.report.rows);
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn snapshot_files_are_written() {
        let p = tiny();
        let _ = run(&p);
        let json = std::fs::read_to_string(p.out_dir.join("obs_metrics.json")).unwrap();
        let csv = std::fs::read_to_string(p.out_dir.join("obs_metrics.csv")).unwrap();
        assert!(json.starts_with("{\"schema\":\"hypersafe.obs.v1\""));
        assert!(csv.starts_with("scope,index,field,value\n"));
        hypersafe_simkit::parse_json(&json).expect("exported JSON parses");
        let _ = std::fs::remove_dir_all(p.out_dir);
    }

    #[test]
    fn flight_recorder_overflows_and_keeps_the_tail() {
        let fr = flight_recorder_demo(4, 8);
        assert!(fr.seen() > 8, "the flood must overflow the ring");
        assert_eq!(fr.seen() - fr.evicted(), 8, "exactly cap events kept");
    }
}
