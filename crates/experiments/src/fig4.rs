//! E7 — the paper's Fig. 4: a 4-cube with four faulty nodes and one
//! faulty link, routed with the EGS dual-view machinery (§4.1).
//!
//! The figure itself is not machine-readable in the supplied text, so
//! this experiment *reconstructs* it (DESIGN.md §5 item 2): exhaustive
//! search over all C(14, 4) placements of four faulty nodes (the link
//! (1000, 1001) is fixed by the narration) for instances satisfying
//! every stated fact:
//!
//! * node 1000 is 1-safe and node 1001 is 2-safe *in their own view*,
//!   while both advertise 0 (treated as faulty by everyone else);
//! * for the unicast 1101 → 1000 (H = 2) both preferred neighbors of
//!   the source read as faulty, the spare neighbor 1111 has level
//!   4 > H + 1, and the resulting suboptimal route delivers in 4 hops;
//! * the paper's narrated path 1101 → 1111 → 1011 → 1010 → 1000 is
//!   physically traversable.

use crate::table::Report;
use hypersafe_core::{route_egs, Decision, ExtendedSafetyMap};
use hypersafe_topology::{FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId, Path};

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

/// Builds the Fig. 4 instance for a given set of four faulty nodes
/// (always with the faulty link (1000, 1001)).
pub fn instance(faulty: &[NodeId]) -> FaultConfig {
    let cube = Hypercube::new(4);
    let mut links = LinkFaultSet::new();
    links.insert(n("1000"), n("1001"));
    FaultConfig::with_faults(
        cube,
        FaultSet::from_nodes(cube, faulty.iter().copied()),
        links,
    )
}

/// Whether `cfg` satisfies every fact the paper states about Fig. 4.
pub fn consistent(cfg: &FaultConfig) -> bool {
    let emap = ExtendedSafetyMap::compute(cfg);
    // Stated safety levels in the nodes' own views.
    if emap.own_level(n("1000")) != 1 || emap.own_level(n("1001")) != 2 {
        return false;
    }
    if emap.advertised_level(n("1000")) != 0 || emap.advertised_level(n("1001")) != 0 {
        return false;
    }
    // The 1101 → 1000 walk: both preferred neighbors (1100, 1001) read
    // as faulty; spare 1111 has level 4.
    if !cfg.node_faulty(n("1100")) {
        return false; // 1001 reads faulty via N2 automatically
    }
    if emap.advertised_level(n("1111")) != 4 {
        return false;
    }
    let res = route_egs(cfg, &emap, n("1101"), n("1000"));
    if !matches!(res.decision, Decision::Suboptimal { .. }) || !res.delivered {
        return false;
    }
    if res.path.as_ref().map(Path::len) != Some(4) {
        return false;
    }
    // The narrated alternative must be physically walkable.
    let narrated = Path::from_nodes(vec![n("1101"), n("1111"), n("1011"), n("1010"), n("1000")]);
    narrated.traversable(cfg, false)
}

/// Exhaustively enumerates all consistent fault placements.
pub fn search() -> Vec<Vec<NodeId>> {
    let cube = Hypercube::new(4);
    // Candidate faulty nodes: anything but the faulty link's endpoints.
    let candidates: Vec<NodeId> = cube
        .nodes()
        .filter(|&a| a != n("1000") && a != n("1001"))
        .collect();
    let mut found = Vec::new();
    let k = candidates.len();
    for a in 0..k {
        for b in a + 1..k {
            for c in b + 1..k {
                for d in c + 1..k {
                    let faults = vec![candidates[a], candidates[b], candidates[c], candidates[d]];
                    let cfg = instance(&faults);
                    if consistent(&cfg) {
                        found.push(faults);
                    }
                }
            }
        }
    }
    found
}

/// Regenerates Fig. 4: reports every consistent reconstruction and the
/// EGS levels + routing walk of the first one.
pub fn run() -> Report {
    let found = search();
    let mut rep = Report::new(
        "fig4",
        "Fig. 4 — 4-cube, four faulty nodes + faulty link (1000,1001), EGS views",
        &["node", "advertised", "own_view", "class"],
    );
    assert!(
        !found.is_empty(),
        "at least one consistent reconstruction exists"
    );
    let pinned = &found[0];
    let cfg = instance(pinned);
    let emap = ExtendedSafetyMap::compute(&cfg);
    for a in cfg.cube().nodes() {
        let class = if cfg.node_faulty(a) {
            "faulty"
        } else if emap.is_n2(a) {
            "N2"
        } else {
            "N1"
        };
        rep.row(vec![
            a.to_binary(4),
            emap.advertised_level(a).to_string(),
            emap.own_level(a).to_string(),
            class.into(),
        ]);
    }
    rep.note(format!(
        "{} consistent fault placements; pinned {:?}",
        found.len(),
        pinned.iter().map(|a| a.to_binary(4)).collect::<Vec<_>>()
    ));
    let res = route_egs(&cfg, &emap, n("1101"), n("1000"));
    rep.note(format!(
        "unicast 1101 → 1000 (H = 2): suboptimal via spare 1111, {}",
        res.path.as_ref().expect("delivered").render(4)
    ));
    rep.note(
        "paper's narrated path 1101 → 1111 → 1011 → 1010 → 1000 verified traversable".to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_consistent_instances() {
        let found = search();
        assert!(!found.is_empty());
        // The hand-picked instance used in hypersafe-core's unit tests
        // is among them.
        let hand: Vec<NodeId> = ["0000", "0010", "0101", "1100"]
            .iter()
            .map(|s| n(s))
            .collect();
        assert!(
            found.iter().any(|f| {
                let mut a = f.clone();
                a.sort();
                a == hand
            }),
            "hand instance should be rediscovered"
        );
    }

    #[test]
    fn report_classifies_n2() {
        let rep = run();
        let row_1000 = rep.rows.iter().find(|r| r[0] == "1000").unwrap();
        assert_eq!(row_1000[1], "0", "advertised 0");
        assert_eq!(row_1000[2], "1", "own view 1-safe");
        assert_eq!(row_1000[3], "N2");
        let row_1001 = rep.rows.iter().find(|r| r[0] == "1001").unwrap();
        assert_eq!(row_1001[2], "2", "own view 2-safe");
    }
}
