//! E2 — the paper's Fig. 2: average number of rounds of information
//! exchange (GS) for seven-cubes with various numbers of faults.
//!
//! Paper claims reproduced here:
//! * the average is far below the worst case `n − 1`;
//! * with fewer than `n` faults the average is below 2.

use crate::table::{f2, Report};
use hypersafe_core::run_gs;
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{ci95, mean, uniform_faults, Sweep};

/// Parameters for the Fig. 2 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Params {
    /// Cube dimension (paper: 7).
    pub n: u8,
    /// Largest fault count to sweep (inclusive).
    pub max_faults: usize,
    /// Trials per fault count.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            n: 7,
            max_faults: 32,
            trials: 1000,
            seed: 0x5AFE,
        }
    }
}

/// One sweep point: fault count → (mean rounds, ci95, max observed).
pub fn rounds_at(p: &Fig2Params, m: usize) -> (f64, f64, u32) {
    let cube = Hypercube::new(p.n);
    let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
    let rounds: Vec<f64> = sweep.run(|_, rng| {
        let faults = uniform_faults(cube, m, rng);
        let cfg = FaultConfig::with_node_faults(cube, faults);
        run_gs(&cfg).map.rounds() as f64
    });
    let max = rounds.iter().cloned().fold(0.0f64, f64::max) as u32;
    (mean(&rounds), ci95(&rounds), max)
}

/// Regenerates Fig. 2.
pub fn run(p: &Fig2Params) -> Report {
    let mut rep = Report::new(
        "fig2",
        format!(
            "Fig. 2 — average GS rounds, {}-cubes, {} trials/point",
            p.n, p.trials
        ),
        &["faults", "mean_rounds", "ci95", "max_rounds"],
    );
    let mut below2_under_n = true;
    let mut overall_max = 0u32;
    for m in 0..=p.max_faults {
        let (mu, ci, max) = rounds_at(p, m);
        overall_max = overall_max.max(max);
        if m < p.n as usize && mu >= 2.0 {
            below2_under_n = false;
        }
        rep.row(vec![m.to_string(), f2(mu), f2(ci), max.to_string()]);
    }
    rep.note(format!(
        "worst-case bound n − 1 = {}; observed max = {}",
        p.n - 1,
        overall_max
    ));
    rep.note(format!(
        "paper claim 'mean < 2 when faults < n': {}",
        if below2_under_n { "HOLDS" } else { "VIOLATED" }
    ));
    assert!(overall_max <= (p.n - 1) as u32, "Corollary to Property 1");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig2Params {
        Fig2Params {
            n: 7,
            max_faults: 10,
            trials: 60,
            seed: 42,
        }
    }

    #[test]
    fn zero_faults_zero_rounds() {
        let (mu, _, max) = rounds_at(&small(), 0);
        assert_eq!(mu, 0.0);
        assert_eq!(max, 0);
    }

    #[test]
    fn mean_below_two_under_n_faults() {
        let p = small();
        for m in 1..7 {
            let (mu, _, max) = rounds_at(&p, m);
            assert!(mu < 2.0, "m = {m}: mean {mu}");
            assert!(max <= 6);
        }
    }

    #[test]
    fn rounds_grow_with_density_but_stay_bounded() {
        let p = small();
        let (mu_light, _, _) = rounds_at(&p, 2);
        let (mu_heavy, _, max) = rounds_at(&p, 10);
        assert!(mu_heavy >= mu_light);
        assert!(max <= 6, "n − 1 bound");
    }

    #[test]
    fn full_report_renders() {
        let rep = run(&Fig2Params {
            n: 6,
            max_faults: 6,
            trials: 30,
            seed: 7,
        });
        assert_eq!(rep.rows.len(), 7);
        assert!(rep.notes.iter().any(|s| s.contains("HOLDS")));
    }
}
