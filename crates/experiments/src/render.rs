//! ASCII rendering of small cubes — Fig.-1-style diagrams in the
//! terminal.
//!
//! A 3-cube is drawn in the classic wireframe projection; a 4-cube as
//! its two dimension-3 subcubes side by side (cross-dimension links
//! implied). Each vertex carries a caller-supplied label (typically
//! `level` or `X` for faulty), so `cubeview --draw` can show the
//! safety landscape at a glance.

use hypersafe_topology::NodeId;

/// Wireframe of a 3-cube. `{abc}` placeholders name vertices by their
/// binary address; each is replaced by a 7-character label.
const CUBE3: &str = r#"
      {110}---------{111}
      / |           / |
     /  |          /  |
  {010}---------{011} |
    |   |         |   |
    | {100}-------|-{101}
    |  /          |  /
    | /           | /
  {000}---------{001}
"#;

/// Renders a 3-cube with per-node labels from `label` (padded/truncated
/// to 7 characters, centered).
pub fn render_q3(base: u64, label: &mut dyn FnMut(NodeId) -> String) -> String {
    let mut out = CUBE3.to_string();
    for raw in 0..8u64 {
        let key = format!("{{{:03b}}}", raw);
        let text = label(NodeId::new(base | raw));
        out = out.replace(&key, &center7(&text));
    }
    out
}

/// Renders a 4-cube as its `0xxx` and `1xxx` subcubes side by side.
pub fn render_q4(label: &mut dyn FnMut(NodeId) -> String) -> String {
    let left = render_q3(0, label);
    let right = render_q3(8, label);
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    let width = l.iter().map(|s| s.len()).max().unwrap_or(0) + 6;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}{}\n",
        "  subcube 0xxx",
        "  subcube 1xxx (linked to 0xxx vertex-wise along dim 3)",
        width = width
    ));
    for i in 0..l.len().max(r.len()) {
        let a = l.get(i).copied().unwrap_or("");
        let b = r.get(i).copied().unwrap_or("");
        out.push_str(&format!("{a:<width$}{b}\n", width = width));
    }
    out
}

fn center7(s: &str) -> String {
    let s: String = s.chars().take(7).collect();
    let pad = 7 - s.chars().count();
    let left = pad / 2;
    format!("{}{}{}", "-".repeat(left), s, "-".repeat(pad - left))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_replaces_all_placeholders() {
        let mut label = |a: NodeId| format!("{}", a.raw());
        let s = render_q3(0, &mut label);
        assert!(!s.contains('{'), "all placeholders substituted:\n{s}");
        for raw in 0..8 {
            assert!(s.contains(&format!("{raw}")), "vertex {raw} labeled");
        }
    }

    #[test]
    fn q4_has_both_subcubes() {
        let mut label = |a: NodeId| a.to_binary(4);
        let s = render_q4(&mut label);
        assert!(s.contains("0000"));
        assert!(s.contains("1111"));
        assert!(s.contains("subcube 0xxx"));
        assert!(!s.contains('{'));
    }

    #[test]
    fn labels_are_centered_to_seven() {
        assert_eq!(center7("ab"), "--ab---");
        assert_eq!(center7("abcdefg"), "abcdefg");
        assert_eq!(center7("abcdefghij"), "abcdefg", "truncated");
    }

    #[test]
    fn q3_wireframe_stays_aligned() {
        // With uniform-width labels every line keeps the template
        // geometry (same line count as the template).
        let mut label = |_: NodeId| "x".to_string();
        let s = render_q3(0, &mut label);
        assert_eq!(s.lines().count(), CUBE3.lines().count());
    }
}
