//! Plain-text tables and CSV emission for experiment reports.
//!
//! Every experiment returns a [`Report`]; the `repro` binary renders it
//! to the terminal and optionally writes the CSV next to it. No serde:
//! the data is rectangular strings and two dozen lines of code beat a
//! dependency (DESIGN.md §6).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rendered experiment: a named table plus free-form notes (the
/// paper-vs-measured commentary that lands in EXPERIMENTS.md).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Experiment identifier, e.g. `"fig2"`.
    pub name: String,
    /// Human title, e.g. `"Fig. 2 — average GS rounds, 7-cube"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells; every row must match `headers.len()`.
    pub rows: Vec<Vec<String>>,
    /// Paper-vs-measured observations, claim checks, caveats.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders an aligned text table with title and notes.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Renders a GitHub-flavored Markdown table (title as a heading,
    /// notes as a bullet list) — for pasting results into
    /// EXPERIMENTS.md or issues.
    pub fn to_markdown(&self) -> String {
        fn cell(s: &str) -> String {
            s.replace('|', "\\|")
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "- {}", n);
            }
        }
        out
    }

    /// Serializes as RFC-4180-ish CSV (quotes only where needed).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|s| cell(s))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|s| cell(s)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV into `dir/<name>.csv` and returns the path.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with 2 decimals (the table default).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(numer: u64, denom: u64) -> String {
    if denom == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * numer as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t", "Title", &["a", "long_header"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["10".into(), "x,y".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn render_is_aligned() {
        let s = sample().render();
        assert!(s.contains("== Title =="));
        assert!(s.contains("note: hello"));
        // Both data rows align under the headers.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn markdown_renders_structure() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Title\n"));
        assert!(md.contains("| a | long_header |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 10 | x,y |"));
        assert!(md.contains("- hello"));
    }

    #[test]
    fn markdown_escapes_pipes() {
        let mut r = Report::new("t", "T", &["a"]);
        r.row(vec!["x|y".into()]);
        assert!(r.to_markdown().contains("x\\|y"));
    }

    #[test]
    fn csv_quotes_commas() {
        let s = sample().to_csv();
        assert!(s.contains("\"x,y\""));
        assert!(s.starts_with("a,long_header\n"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        Report::new("t", "T", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "-");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("hypersafe_table_test");
        let p = sample().write_csv(&dir).unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        assert_eq!(back, sample().to_csv());
        let _ = std::fs::remove_file(p);
    }
}
