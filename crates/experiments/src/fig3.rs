//! E4 — the paper's Fig. 3: unicasting in a *disconnected* four-cube.
//!
//! Faults {0110, 1010, 1100, 1111} isolate node 1110. The paper walks
//! through three unicasts: 0101 → 0000 (optimal via C1), 0111 → 1011
//! (optimal via C2 through preferred neighbor 0011), and 0111 → 1110
//! (all three conditions fail → abort at the source, which is exactly
//! the partition detection no safe-node scheme can perform).

use crate::table::Report;
use hypersafe_core::{route, source_decision, Condition, Decision, SafetyMap};
use hypersafe_topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId};

/// The exact Fig. 3 instance.
pub fn fig3_instance() -> FaultConfig {
    let cube = Hypercube::new(4);
    FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
    )
}

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

/// Regenerates Fig. 3.
pub fn run() -> Report {
    let cfg = fig3_instance();
    let map = SafetyMap::compute(&cfg);
    let mut rep = Report::new(
        "fig3",
        "Fig. 3 — disconnected 4-cube, faults {0110, 1010, 1100, 1111}",
        &["unicast", "H", "S(s)", "decision", "path", "delivered"],
    );

    let comps = connectivity::components(&cfg);
    assert_eq!(comps.len(), 2, "the cube is split in two parts");
    assert!(
        comps.iter().any(|c| c == &vec![n("1110")]),
        "1110 is isolated"
    );
    rep.note(format!(
        "components: {:?}",
        comps
            .iter()
            .map(|c| c.iter().map(|a| a.to_binary(4)).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    ));

    let mut case = |s: &str, d: &str| {
        let (s, d) = (n(s), n(d));
        let res = route(&cfg, &map, s, d);
        let decision = match res.decision {
            Decision::Optimal {
                condition: Condition::C1,
                ..
            } => "optimal (C1)",
            Decision::Optimal {
                condition: Condition::C2,
                ..
            } => "optimal (C2)",
            Decision::Optimal { .. } => "optimal",
            Decision::Suboptimal { .. } => "suboptimal (C3)",
            Decision::Failure => "FAILURE (detected at source)",
            Decision::AlreadyThere => "trivial",
        };
        rep.row(vec![
            format!("{} → {}", s.to_binary(4), d.to_binary(4)),
            s.distance(d).to_string(),
            map.level(s).to_string(),
            decision.into(),
            res.path
                .as_ref()
                .map_or_else(|| "-".to_string(), |p| p.render(4)),
            res.delivered.to_string(),
        ]);
        res
    };

    // Walk 1: s = 0101, d = 0000 — "H = 2 and the safety level of the
    // source is 2. Therefore, optimal unicasting is possible."
    let r1 = case("0101", "0000");
    assert_eq!(map.level(n("0101")), 2);
    assert!(matches!(
        r1.decision,
        Decision::Optimal {
            condition: Condition::C1,
            ..
        }
    ));
    assert!(r1.delivered && r1.path.unwrap().is_optimal());

    // Walk 2: s = 0111, d = 1011 — source level 1 < H = 2, but the
    // preferred neighbor 0011 has level 2 → optimal via C2.
    assert_eq!(map.level(n("0111")), 1);
    assert_eq!(map.level(n("0011")), 2);
    let r2 = case("0111", "1011");
    assert!(matches!(
        r2.decision,
        Decision::Optimal {
            condition: Condition::C2,
            ..
        }
    ));
    assert!(r2.delivered && r2.path.unwrap().is_optimal());

    // Walk 3: s = 0111, d = 1110 — C1 fails (1 < 2), C2 fails (preferred
    // neighbors 0110 faulty and 1111 faulty), C3 fails (spare neighbors
    // 0101 and 0011 at level 2 < H + 1 = 3) → abort at the source.
    let dec = source_decision(&map, n("0111"), n("1110"));
    assert_eq!(dec, Decision::Failure);
    let r3 = case("0111", "1110");
    assert!(!r3.delivered);

    // Any unicast initiated at the isolated 1110 fails too.
    for d in cfg.healthy_nodes() {
        if d == n("1110") {
            continue;
        }
        assert_eq!(source_decision(&map, n("1110"), d), Decision::Failure);
    }
    rep.note("all unicasts from isolated 1110 abort locally (paper §3.3)".to_string());
    rep.note(
        "safe-node schemes (LH/WF/Chiu-Wu) are inapplicable here: safe sets are empty (Theorem 4)"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_all_three_walks() {
        let rep = run();
        assert_eq!(rep.rows.len(), 3);
        assert!(rep.rows[0][3].contains("C1"));
        assert!(rep.rows[1][3].contains("C2"));
        assert!(rep.rows[2][3].contains("FAILURE"));
    }

    #[test]
    fn safety_levels_of_key_nodes() {
        let cfg = fig3_instance();
        let map = SafetyMap::compute(&cfg);
        assert_eq!(map.level(n("0101")), 2);
        assert_eq!(map.level(n("0111")), 1);
        assert_eq!(map.level(n("0011")), 2);
        // The isolated node's level reflects its dead neighborhood.
        assert_eq!(map.level(n("1110")), 1);
    }
}
