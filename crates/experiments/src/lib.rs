//! # hypersafe-experiments
//!
//! The experiment harness: one module per figure/claim of the paper
//! (see DESIGN.md §3 for the full index), each returning a renderable
//! [`table::Report`]. The `repro` binary exposes them as subcommands.
//!
//! | id | module | paper artifact |
//! |----|--------|----------------|
//! | E1 | [`fig1`] | Fig. 1 — safety levels + §3.2 worked unicasts |
//! | E2 | [`fig2`] | Fig. 2 — average GS rounds vs faults (7-cube) |
//! | E3 | [`safesets`] | §2.3 — safe-set comparison and containment |
//! | E4 | [`fig3`] | Fig. 3 — disconnected-cube unicasts |
//! | E5 | [`property2`] | Property 2 + Theorem 3 guarantee regime |
//! | E6 | [`thm4`] | Theorem 4 — safe sets die, safety levels survive |
//! | E7 | [`fig4`] | Fig. 4 — faulty links (EGS) |
//! | E8 | [`fig5`] | Fig. 5 — generalized hypercube routing |
//! | E9 | [`routing_compare`] | routing comparison vs all baselines |
//! | E10 | [`maintenance_exp`] | §2.2 — maintenance strategy ablation |
//! | E11 | [`rounds_compare`] | §2.3 — status rounds GS vs LH vs WF |
//! | E12 | [`broadcast_exp`] | [9] — safety-level broadcasting |
//! | E13 | [`dynamic_exp`] | §2.2 — mid-flight faults + reroute |
//! | E14 | [`distribution_exp`] | fault-distribution sensitivity |
//! | E15 | [`linkfaults_exp`] | §4.1 — faulty links at scale (EGS) |
//! | E16 | [`tightness_exp`] | safety level vs exact optimal radius |
//! | E17 | [`traffic_exp`] | link-load balance & tie-break ablation |
//! | E18 | [`multicast_exp`] | multicast prefix sharing |
//! | E19 | [`patterns_exp`] | embedded application traffic patterns |
//! | E20 | [`vectors_exp`] | safety vectors vs scalar levels vs oracle |
//! | E21 | [`congestion_exp`] | queueing latency under burst load |
//! | E22 | [`loss_exp`] | loss robustness — reliable GS/unicast over noisy links |
//! | E23 | [`dst`] | deterministic simulation testing — seeded adversaries + invariants |
//! | E24 | [`churn_exp`] | incremental churn + batched routing throughput |
//! | E25 | [`obs_exp`] | observability snapshot — metrics registry + flight recorder |
//! | E26 | [`service_exp`] | resilient-service churn soak — epoch snapshots + request lifecycle |
//! | E27 | [`safety_scale_exp`] | packed bit-plane safety kernels at million-node scale |
//! | E28 | [`mc_exp`] | explicit-state model checking — exhaustive GS/ARQ verification |
//! | E29 | [`multipath_exp`] | k-disjoint multi-path unicast — diversity, overhead, hotspot tail latency |
#![warn(missing_docs)]

pub mod broadcast_exp;
pub mod churn_exp;
pub mod congestion_exp;
pub mod distribution_exp;
pub mod dst;
pub mod dynamic_exp;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod linkfaults_exp;
pub mod loss_exp;
pub mod maintenance_exp;
pub mod mc_exp;
pub mod multicast_exp;
pub mod multipath_exp;
pub mod obs_exp;
pub mod patterns_exp;
pub mod property2;
pub mod render;
pub mod rounds_compare;
pub mod routing_compare;
pub mod safesets;
pub mod safety_scale_exp;
pub mod service_exp;
pub mod table;
pub mod thm4;
pub mod tightness_exp;
pub mod traffic_exp;
pub mod vectors_exp;

pub use table::Report;
