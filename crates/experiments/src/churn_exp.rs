//! E24 — incremental churn throughput (`repro churn`): drive random
//! fault/recovery churn through the incremental worklist engine
//! ([`SafetyMap::apply_fault`] / [`SafetyMap::apply_recover`]),
//! cross-checking every step against a from-scratch
//! [`SafetyMap::compute`], then push a batched routing workload
//! through [`route_many`] and cross-check it against the sequential
//! path. Every reported number is a deterministic function of the
//! parameters — counts and checksums, never wall-clock — so CI can
//! diff `churn.csv` across `RAYON_NUM_THREADS` settings and fail on
//! any byte difference.

use crate::table::{f2, Report};
use hypersafe_core::{route_many, route_many_seq, BatchOutcome, Decision, DeltaStats, SafetyMap};
use hypersafe_simkit::Metrics;
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, Sweep};
use rand::Rng;
use std::path::PathBuf;

/// Parameters for the churn sweep.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Cube dimensions to sweep.
    pub dims: Vec<u8>,
    /// Churn-rate points: events per timeline.
    pub rates: Vec<u32>,
    /// Independent timelines per (dimension, rate) point.
    pub trials: u32,
    /// Source/destination pairs routed in one `route_many` batch per
    /// timeline (over the post-churn fault configuration).
    pub pairs: usize,
    /// Master seed.
    pub seed: u64,
    /// Where `churn.csv` lands.
    pub out_dir: PathBuf,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            dims: vec![8, 9, 10, 11, 12, 13, 14],
            rates: vec![8, 32, 128],
            trials: 3,
            pairs: 20_000,
            seed: 0xC8A1,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// One timeline's deterministic outcome.
struct TrialOutcome {
    stats: DeltaStats,
    /// Cells a from-scratch recompute would have evaluated instead
    /// (`2^n × rounds`, summed over the same events).
    cells_scratch: u64,
    waves_max: u32,
    rounds_saved: u64,
    delivered: u64,
    checksum: u64,
    /// Incremental-vs-scratch or par-vs-seq divergences (CI gate).
    mismatches: u64,
    /// Histograms only (no engine here): per-event update waves in
    /// `rounds`, per-delivery batch-route hops in `hops`. Counts, so
    /// the merged export stays thread-count independent like the CSV.
    obs: Metrics,
}

fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

fn outcome_word(o: &BatchOutcome) -> u64 {
    let tag = match o.decision {
        Decision::Optimal { first_dim, .. } => 0x10 | first_dim as u64,
        Decision::Suboptimal { first_dim } => 0x40 | first_dim as u64,
        Decision::Failure => 0x80,
        Decision::AlreadyThere => 0x81,
    };
    tag << 40 | (o.hops as u64) << 8 | o.delivered as u64
}

fn run_trial<R: Rng + ?Sized>(n: u8, events: u32, pairs: usize, rng: &mut R) -> TrialOutcome {
    let cube = Hypercube::new(n);
    let mut cfg = FaultConfig::fault_free(cube);
    let mut map = SafetyMap::compute(&cfg);
    let mut out = TrialOutcome {
        stats: DeltaStats::default(),
        cells_scratch: 0,
        waves_max: 0,
        rounds_saved: 0,
        delivered: 0,
        checksum: 0xcbf2_9ce4_8422_2325,
        mismatches: 0,
        obs: Metrics::new(0, 0),
    };
    for _ in 0..events {
        // Stay below n live faults (the paper's guarantee regime) so
        // the routing batch afterwards exercises real deliveries.
        let live = cfg.node_faults().len();
        let recover = live > 0 && (live >= (n - 1) as usize || rng.gen_bool(0.4));
        let stats = if recover {
            let victims: Vec<NodeId> = cfg.node_faults().iter().collect();
            let v = victims[rng.gen_range(0..victims.len())];
            cfg.node_faults_mut().remove(v);
            map.apply_recover(&cfg, v)
        } else {
            let v = loop {
                let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                if !cfg.node_faulty(v) {
                    break v;
                }
            };
            cfg.node_faults_mut().insert(v);
            map.apply_fault(&cfg, v)
        };
        out.stats.cells_touched += stats.cells_touched;
        out.stats.cells_changed += stats.cells_changed;
        out.obs.record_rounds(stats.waves as u64);
        out.waves_max = out.waves_max.max(stats.waves);
        out.rounds_saved += stats.rounds_saved as u64;
        // Exactness gate — a real assert (not debug_assert) plus a
        // counted mismatch so `repro churn` can exit nonzero.
        let scratch = SafetyMap::compute(&cfg);
        out.cells_scratch += cube.num_nodes() * scratch.rounds().max(1) as u64;
        if map.store() != scratch.store() {
            out.mismatches += 1;
        }
    }
    let batch: Vec<(NodeId, NodeId)> = (0..pairs).map(|_| random_pair(&cfg, rng)).collect();
    let par = route_many(&cfg, &map, &batch);
    let seq = route_many_seq(&cfg, &map, &batch);
    if par != seq {
        out.mismatches += 1;
    }
    for o in &par {
        out.delivered += o.delivered as u64;
        if o.delivered {
            out.obs.record_hops(o.hops as u64);
        }
        out.checksum = fnv1a(out.checksum, outcome_word(o));
    }
    out
}

/// The sweep's outcome: the report plus the mismatch count the `repro`
/// binary turns into its exit code.
pub struct ChurnRun {
    /// Renderable summary table (one row per dimension × rate).
    pub report: Report,
    /// Incremental-vs-scratch and parallel-vs-sequential divergences.
    pub mismatches: u64,
}

/// Runs the sweep; writes `churn.csv` into `p.out_dir`.
pub fn run(p: &ChurnParams) -> ChurnRun {
    let mut rep = Report::new(
        "churn",
        format!(
            "incremental churn + batched routing: {} timelines × {} pairs per point",
            p.trials, p.pairs
        ),
        &[
            "n",
            "events",
            "cells_touched",
            "cells_scratch",
            "scratch/incr",
            "waves_max",
            "rounds_saved",
            "pairs",
            "delivered",
            "route_checksum",
            "mismatches",
        ],
    );
    let mut mismatches = 0u64;
    let mut obs = Metrics::new(0, 0);
    for &n in &p.dims {
        for &events in &p.rates {
            let sweep = Sweep::new(
                p.trials,
                p.seed ^ ((n as u64) << 32) ^ ((events as u64) << 16),
            );
            let outcomes = sweep.run(|_, rng| run_trial(n, events, p.pairs, rng));
            let touched: u64 = outcomes.iter().map(|o| o.stats.cells_touched).sum();
            let scratch: u64 = outcomes.iter().map(|o| o.cells_scratch).sum();
            let saved: u64 = outcomes.iter().map(|o| o.rounds_saved).sum();
            let delivered: u64 = outcomes.iter().map(|o| o.delivered).sum();
            let bad: u64 = outcomes.iter().map(|o| o.mismatches).sum();
            let checksum = outcomes.iter().fold(0u64, |h, o| fnv1a(h, o.checksum));
            mismatches += bad;
            for o in &outcomes {
                obs.merge(&o.obs);
            }
            rep.row(vec![
                n.to_string(),
                events.to_string(),
                touched.to_string(),
                scratch.to_string(),
                f2(scratch as f64 / touched.max(1) as f64),
                outcomes
                    .iter()
                    .map(|o| o.waves_max)
                    .max()
                    .unwrap_or(0)
                    .to_string(),
                (saved / (p.trials as u64 * events as u64).max(1)).to_string(),
                (p.pairs as u64 * p.trials as u64).to_string(),
                delivered.to_string(),
                format!("{checksum:016x}"),
                bad.to_string(),
            ]);
        }
    }
    rep.note(
        "every churn event runs the incremental worklist and is checked byte-for-byte \
         against a from-scratch recompute; cells_scratch is what those recomputes \
         evaluated (2^n x rounds), so scratch/incr is the work ratio the delta engine wins"
            .to_string(),
    );
    rep.note(
        "every batch routes through route_many (vendored-rayon par_chunks) and is \
         compared against the sequential path; all columns are counts/checksums — \
         rerun with a different RAYON_NUM_THREADS and the csv must be byte-identical"
            .to_string(),
    );
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("churn_obs.json");
    let csv_path = p.out_dir.join("churn_obs.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snap.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (update-wave + batch-route-hop histograms, \
                 thread-count independent like the csv): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }
    ChurnRun {
        report: rep,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnParams {
        ChurnParams {
            dims: vec![4, 6],
            rates: vec![4, 12],
            trials: 2,
            pairs: 200,
            seed: 9,
            out_dir: std::env::temp_dir().join("hypersafe_churn_test"),
        }
    }

    #[test]
    fn tiny_sweep_is_clean_and_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.mismatches, 0, "{}", a.report.render());
        assert_eq!(a.report.rows, b.report.rows);
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn incremental_beats_scratch_on_every_row() {
        let run = run(&tiny());
        for row in &run.report.rows {
            let touched: u64 = row[2].parse().unwrap();
            let scratch: u64 = row[3].parse().unwrap();
            assert!(
                scratch > touched,
                "scratch {scratch} should exceed incremental {touched}"
            );
        }
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn routing_batches_deliver_in_the_guarantee_regime() {
        let run = run(&tiny());
        for row in &run.report.rows {
            let pairs: u64 = row[7].parse().unwrap();
            let delivered: u64 = row[8].parse().unwrap();
            assert!(delivered * 10 >= pairs * 9, "row {row:?}");
        }
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }
}
