//! E21 — routing *time* under load. The paper's introduction motivates
//! limited-global information with "global optimization, such as time
//! and traffic in routing"; E17 measured traffic, this experiment
//! measures time: a queueing simulation where each node serves one
//! message per service interval, so concentrated routes create
//! head-of-line blocking. Compares tie-break policies by delivered
//! latency under increasing load.

use crate::table::{f2, Report};
use hypersafe_core::{intermediate_dim_tb, NavVector, SafetyMap, TieBreak};
use hypersafe_simkit::{Actor, Ctx, EventEngine, HypercubeNet, Time};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{mean, random_pair, uniform_faults, Sweep};
use std::collections::HashMap;

/// Injection bookkeeping: a tag plus the job's destination and id.
type Injection = (u64, (NodeId, u32));

/// A routed job in flight.
#[derive(Clone, Copy, Debug)]
struct Job {
    nav: NavVector,
    id: u32,
    started: Time,
}

/// Queueing router node: one message per `service` ticks.
struct QueueNode {
    neighbor_levels_map: SafetyMap,
    tb: TieBreak,
    service: Time,
    busy_until: Time,
    /// Jobs this node originates: injection tag → (destination, id).
    to_start: HashMap<u64, (NodeId, u32)>,
    /// Completions observed at this node: (id, end_time, start_time).
    completed: Vec<(u32, Time, Time)>,
}

impl QueueNode {
    fn forward(&mut self, ctx: &mut Ctx<Job>, mut job: Job) {
        let at = ctx.self_id();
        if job.nav.is_done() {
            self.completed.push((job.id, ctx.now(), job.started));
            return;
        }
        let tb = match self.tb {
            TieBreak::Hashed { .. } => TieBreak::Hashed {
                salt: job.id as u64,
            },
            other => other,
        };
        let Some(dim) = intermediate_dim_tb(&self.neighbor_levels_map, at, job.nav, tb) else {
            return;
        };
        job.nav = job.nav.after_hop(dim);
        // Head-of-line blocking: the node has a single injection
        // channel (not per-port), so any send frees up only after the
        // previous one finished its service interval.
        let depart = self.busy_until.max(ctx.now()) + self.service;
        self.busy_until = depart;
        ctx.send(at.neighbor(dim), job, depart - ctx.now());
    }
}

impl Actor for QueueNode {
    type Msg = Job;

    fn on_timer(&mut self, ctx: &mut Ctx<Job>, tag: u64) {
        if let Some((d, id)) = self.to_start.remove(&tag) {
            let job = Job {
                nav: NavVector::new(ctx.self_id(), d),
                id,
                started: ctx.now(),
            };
            self.forward(ctx, job);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Job>, _from: NodeId, job: Job) {
        self.forward(ctx, job);
    }
}

/// Simulation summary for one load point.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Jobs delivered.
    pub delivered: u64,
    /// Mean end-to-end latency (ticks).
    pub mean_latency: f64,
    /// 100th-percentile latency.
    pub max_latency: u64,
    /// Mean latency divided by the job's Hamming distance × service —
    /// the queueing slowdown factor (1.0 = no contention).
    pub slowdown: f64,
}

/// Runs `jobs` unicasts injected in a burst at t = 0 over one faulty
/// instance, with per-node service time 1.
pub fn simulate_burst(
    cfg: &FaultConfig,
    map: &SafetyMap,
    pairs: &[(NodeId, NodeId)],
    tb: TieBreak,
) -> LatencySummary {
    let mut assignments: HashMap<u64, Vec<Injection>> = HashMap::new();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        assignments
            .entry(s.raw())
            .or_default()
            .push((i as u64, (d, i as u32)));
    }
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::new(&net, |a| QueueNode {
        neighbor_levels_map: map.clone(),
        tb,
        service: 1,
        busy_until: 0,
        to_start: assignments
            .get(&a.raw())
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default(),
        completed: Vec::new(),
    });
    // Inject in sorted source order: the engine breaks same-time ties
    // by insertion sequence, so iterating the HashMap directly would
    // make the simulation outcome depend on hasher state.
    let mut sources: Vec<&u64> = assignments.keys().collect();
    sources.sort();
    for s in sources {
        for &(tag, _) in &assignments[s] {
            eng.inject(NodeId::new(*s), tag, 0);
        }
    }
    eng.run(u64::MAX);

    let mut latencies = Vec::new();
    let mut per_job_h: HashMap<u32, u32> = HashMap::new();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        per_job_h.insert(i as u32, s.distance(d));
    }
    let mut slowdowns = Vec::new();
    for a in cfg.cube().nodes() {
        if let Some(node) = eng.actor(a) {
            for &(id, end, start) in &node.completed {
                let lat = end - start;
                latencies.push(lat as f64);
                let h = per_job_h[&id].max(1) as f64;
                slowdowns.push(lat as f64 / h);
            }
        }
    }
    LatencySummary {
        delivered: latencies.len() as u64,
        mean_latency: mean(&latencies),
        max_latency: latencies.iter().cloned().fold(0.0, f64::max) as u64,
        slowdown: mean(&slowdowns),
    }
}

/// Parameters for the congestion sweep.
#[derive(Clone, Copy, Debug)]
pub struct CongestionParams {
    /// Cube dimension.
    pub n: u8,
    /// Fault count per instance.
    pub faults: usize,
    /// Burst sizes to sweep.
    pub loads: [usize; 4],
    /// Instances per point.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for CongestionParams {
    fn default() -> Self {
        CongestionParams {
            n: 7,
            faults: 4,
            loads: [32, 128, 512, 2048],
            trials: 10,
            seed: 0xC047,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &CongestionParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "congestion",
        format!(
            "queueing latency under burst load, {}-cube, {} faults, service 1 tick/node",
            p.n, p.faults
        ),
        &[
            "burst",
            "tiebreak",
            "delivered",
            "mean_latency",
            "max_latency",
            "slowdown",
        ],
    );
    for &load in &p.loads {
        for (name, tb) in [
            ("lowest-dim", TieBreak::LowestDim),
            ("hashed", TieBreak::Hashed { salt: 0 }),
        ] {
            let sweep = Sweep::new(p.trials, p.seed.wrapping_add(load as u64));
            let sums: Vec<LatencySummary> = sweep.run(|_, rng| {
                let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
                let map = SafetyMap::compute(&cfg);
                let pairs: Vec<(NodeId, NodeId)> =
                    (0..load).map(|_| random_pair(&cfg, rng)).collect();
                simulate_burst(&cfg, &map, &pairs, tb)
            });
            let t = sums.len() as f64;
            rep.row(vec![
                load.to_string(),
                name.to_string(),
                f2(sums.iter().map(|s| s.delivered as f64).sum::<f64>() / t),
                f2(sums.iter().map(|s| s.mean_latency).sum::<f64>() / t),
                f2(sums.iter().map(|s| s.max_latency as f64).sum::<f64>() / t),
                f2(sums.iter().map(|s| s.slowdown).sum::<f64>() / t),
            ]);
        }
    }
    rep.note("slowdown = latency / (H × service); 1.00 means contention-free".to_string());
    rep.note("burst injection at t = 0 is the worst case for head-of-line blocking".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersafe_topology::FaultSet;

    #[test]
    fn single_job_has_no_queueing() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        let pairs = [(NodeId::new(0), NodeId::new(0b11111))];
        let s = simulate_burst(&cfg, &map, &pairs, TieBreak::LowestDim);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.mean_latency, 5.0, "H hops × service 1");
        assert!((s.slowdown - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contention_raises_latency() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::fault_free(cube);
        let map = SafetyMap::compute(&cfg);
        // Everyone sends to the same destination: maximal contention.
        let pairs: Vec<(NodeId, NodeId)> = cube
            .nodes()
            .filter(|&a| a != NodeId::new(0b11111))
            .map(|a| (a, NodeId::new(0b11111)))
            .collect();
        let s = simulate_burst(&cfg, &map, &pairs, TieBreak::LowestDim);
        assert_eq!(s.delivered as usize, pairs.len());
        assert!(s.slowdown > 1.5, "hot-spot must queue: {s:?}");
    }

    #[test]
    fn faulty_instance_still_delivers_burst() {
        let cube = Hypercube::new(5);
        let cfg = FaultConfig::with_node_faults(
            cube,
            FaultSet::from_binary_strs(cube, &["00011", "10100"]),
        );
        let map = SafetyMap::compute(&cfg);
        let sweep = Sweep::new(1, 3);
        let mut rng = sweep.trial_rng(0);
        let pairs: Vec<(NodeId, NodeId)> = (0..64).map(|_| random_pair(&cfg, &mut rng)).collect();
        let s = simulate_burst(&cfg, &map, &pairs, TieBreak::Hashed { salt: 0 });
        assert_eq!(
            s.delivered as usize,
            pairs.len(),
            "under n faults nothing is lost"
        );
    }

    #[test]
    fn report_structure() {
        let p = CongestionParams {
            n: 5,
            faults: 2,
            loads: [8, 16, 32, 64],
            trials: 3,
            seed: 1,
        };
        let rep = run(&p);
        assert_eq!(rep.rows.len(), 8);
        // Latency grows with load for each policy.
        let lat = |load: &str, tb: &str| -> f64 {
            rep.rows
                .iter()
                .find(|r| r[0] == load && r[1] == tb)
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(lat("64", "lowest-dim") >= lat("8", "lowest-dim"));
    }
}
