//! E10 — maintenance-strategy ablation (paper §2.2): demand-driven vs
//! periodic vs state-change-driven safety-level upkeep under a random
//! fault/recovery/unicast timeline.

use crate::table::{pct, Report};
use hypersafe_core::{replay, Strategy, Timeline, TimelineEvent};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, Sweep};
use rand::Rng;

/// Parameters for the maintenance ablation.
#[derive(Clone, Copy, Debug)]
pub struct MaintenanceParams {
    /// Cube dimension.
    pub n: u8,
    /// Timeline length in events.
    pub events: u32,
    /// Probability (in percent) that an event is a fault/recovery
    /// rather than a unicast.
    pub churn_pct: u32,
    /// Periodic strategy's refresh interval.
    pub period: u64,
    /// Timelines per strategy.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for MaintenanceParams {
    fn default() -> Self {
        MaintenanceParams {
            n: 7,
            events: 200,
            churn_pct: 15,
            period: 50,
            trials: 50,
            seed: 0xAB1E,
        }
    }
}

/// Generates a random, replayable timeline: faults arrive and recover
/// (never exceeding `n − 1` live faults, the guarantee regime) with
/// unicasts interleaved.
pub fn random_timeline<R: Rng + ?Sized>(p: &MaintenanceParams, rng: &mut R) -> Timeline {
    let cube = Hypercube::new(p.n);
    let mut cfg = FaultConfig::fault_free(cube);
    let mut t = Timeline::new();
    let mut clock = 0u64;
    for _ in 0..p.events {
        clock += rng.gen_range(1..10);
        let churn = rng.gen_range(0..100) < p.churn_pct;
        if churn {
            let live = cfg.node_faults().len();
            let recover = live > 0 && (live >= (p.n - 1) as usize || rng.gen_bool(0.4));
            if recover {
                let victims: Vec<NodeId> = cfg.node_faults().iter().collect();
                let v = victims[rng.gen_range(0..victims.len())];
                cfg.node_faults_mut().remove(v);
                t.push(clock, TimelineEvent::Recover(v));
            } else {
                // Fault a currently-healthy node.
                let v = loop {
                    let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                    if !cfg.node_faulty(v) {
                        break v;
                    }
                };
                cfg.node_faults_mut().insert(v);
                t.push(clock, TimelineEvent::Fault(v));
            }
        } else if cfg.healthy_count() >= 2 {
            let (s, d) = random_pair(&cfg, rng);
            t.push(clock, TimelineEvent::Unicast(s, d));
        }
    }
    t
}

/// Runs the ablation.
pub fn run(p: &MaintenanceParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "maintenance",
        format!(
            "maintenance strategies, {}-cube, {} events × {} timelines (churn {}%)",
            p.n, p.events, p.trials, p.churn_pct
        ),
        &[
            "strategy",
            "gs_runs",
            "gs_messages",
            "cells_touched",
            "stale_unicasts",
            "delivery",
        ],
    );
    let strategies = [
        ("demand-driven", Strategy::DemandDriven),
        ("periodic", Strategy::Periodic { period: p.period }),
        ("state-change", Strategy::StateChangeDriven),
        ("incremental", Strategy::Incremental),
    ];
    for (name, strat) in strategies {
        let sweep = Sweep::new(p.trials, p.seed);
        let reports: Vec<_> = sweep.run(|_, rng| {
            let t = random_timeline(p, rng);
            replay(cube, &t, strat)
        });
        let sum = |f: fn(&hypersafe_core::MaintenanceReport) -> u64| -> u64 {
            reports.iter().map(f).sum()
        };
        let unicasts = sum(|r| r.unicasts);
        rep.row(vec![
            name.into(),
            (sum(|r| r.gs_runs) / p.trials as u64).to_string(),
            (sum(|r| r.gs_messages) / p.trials as u64).to_string(),
            (sum(|r| r.cells_touched) / p.trials as u64).to_string(),
            pct(sum(|r| r.stale_unicasts), unicasts),
            pct(sum(|r| r.delivered), unicasts),
        ]);
    }
    rep.note("demand-driven and state-change-driven never route on stale levels".to_string());
    rep.note(format!(
        "periodic (T = {}) trades staleness for a fixed exchange budget — the paper's \
         'exchanges are wasted when status is stable' critique in numbers",
        p.period
    ));
    rep.note(
        "incremental is always-fresh like state-change but each event runs delta-GS: \
         only the affected region re-broadcasts (gs_messages) and only touched cells \
         re-evaluate (cells_touched)"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MaintenanceParams {
        MaintenanceParams {
            n: 5,
            events: 60,
            churn_pct: 20,
            period: 30,
            trials: 10,
            seed: 4,
        }
    }

    #[test]
    fn timelines_are_deterministic_per_seed() {
        let p = small();
        let sweep = Sweep::new(2, 7);
        let mut rng_a = sweep.trial_rng(0);
        let mut rng_b = sweep.trial_rng(0);
        assert_eq!(
            random_timeline(&p, &mut rng_a).events(),
            random_timeline(&p, &mut rng_b).events()
        );
    }

    #[test]
    fn lazy_strategies_never_stale_and_always_deliver() {
        let rep = run(&small());
        let row = |name: &str| rep.rows.iter().find(|r| r[0] == name).unwrap().clone();
        assert_eq!(row("demand-driven")[4], "0.0%");
        assert_eq!(row("state-change")[4], "0.0%");
        assert_eq!(row("incremental")[4], "0.0%");
        // In the < n faults regime with fresh maps, delivery is total.
        assert_eq!(row("demand-driven")[5], "100.0%");
        assert_eq!(row("state-change")[5], "100.0%");
        assert_eq!(row("incremental")[5], "100.0%");
    }

    #[test]
    fn incremental_bills_fewer_messages_than_state_change() {
        let rep = run(&small());
        let col = |name: &str, i: usize| -> u64 {
            rep.rows.iter().find(|r| r[0] == name).unwrap()[i]
                .parse()
                .unwrap()
        };
        assert_eq!(col("incremental", 1), col("state-change", 1));
        assert!(col("incremental", 2) < col("state-change", 2));
        assert!(col("incremental", 3) > 0, "cells_touched is reported");
        assert_eq!(col("state-change", 3), 0);
    }

    #[test]
    fn state_change_runs_gs_most() {
        let rep = run(&small());
        let runs = |name: &str| -> u64 {
            rep.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(runs("state-change") >= runs("demand-driven"));
    }
}
