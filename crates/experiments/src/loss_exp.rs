//! E22 — loss robustness: the paper assumes reliable links; this
//! experiment drops that assumption and measures what the reliable
//! delivery layer costs. Sweeping per-link loss (the standard workload
//! profiles) against fault count: does distributed GS still converge to
//! the centralized fixed point, how long does it take, what message
//! overhead does ACK/retransmit add over the lossless baseline, and do
//! feasible unicasts still deliver.

use crate::table::{f2, pct, Report};
use hypersafe_core::{
    route, run_gs_reliable, run_gs_reliable_observed, run_unicast_lossy_observed, LossyOutcome,
    SafetyMap,
};
use hypersafe_simkit::{Metrics, ReliableConfig};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{
    mean, random_pair, uniform_faults, LossProfile, Sweep, STANDARD_PROFILES,
};
use rand::Rng;
use std::path::PathBuf;

/// Parameters for the loss sweep.
#[derive(Clone, Debug)]
pub struct LossParams {
    /// Cube dimension.
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Fault-count step.
    pub step: usize,
    /// Instances per (profile, fault count) point.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Event budget per protocol run (quiescence detector's horizon).
    pub event_budget: u64,
    /// Master seed.
    pub seed: u64,
    /// When set, the merged metrics snapshot of every lossy run lands
    /// here as `loss_obs.json` / `loss_obs.csv` (next to `loss.csv`).
    pub out_dir: Option<PathBuf>,
}

impl Default for LossParams {
    fn default() -> Self {
        LossParams {
            n: 6,
            max_faults: 4,
            step: 2,
            trials: 40,
            pairs_per_instance: 4,
            event_budget: 2_000_000,
            seed: 0x1055,
            out_dir: None,
        }
    }
}

/// Per-trial measurements, aggregated into one report row per point.
struct Trial {
    gs_ok: bool,
    gs_time: f64,
    gs_overhead: f64,
    feasible: u32,
    delivered: u32,
    retransmits: u64,
    duplicates_surfaced: u64,
    obs: Metrics,
}

fn run_point(p: &LossParams, prof: &LossProfile, m: usize, point: u64) -> Vec<Trial> {
    let cube = Hypercube::new(p.n);
    let rcfg = ReliableConfig::default();
    let sweep = Sweep::new(p.trials, p.seed.wrapping_add(point));
    sweep.run(|_, rng| {
        let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
        let central = SafetyMap::compute(&cfg);
        let chseed: u64 = rng.gen();

        // The observed runner: same execution (metrics hooks are
        // passive), plus the per-node/per-dimension registry that the
        // `loss_obs.json` snapshot aggregates.
        let (run, mut obs) =
            run_gs_reliable_observed(&cfg, prof.channel(chseed), rcfg, 1, p.event_budget);
        // The engine's corrected send counter: every injection attempt,
        // counted once, regardless of its fate. (An earlier accounting
        // reconstructed this from delivered + lost + dropped, which
        // double-counted channel duplicates on the lossy side and so
        // overstated the overhead of duplicating profiles.)
        let gs_sent = run.stats.sends as f64;
        // Lossless baseline: the same protocol over a clean channel.
        // The overhead ratio then isolates what the *loss* costs
        // (retransmissions and the ACKs they provoke).
        let clean = LossProfile {
            name: "base",
            loss: 0.0,
            jitter: 0,
            duplicate: 0.0,
        };
        let base = run_gs_reliable(&cfg, clean.channel(chseed), rcfg, 1, p.event_budget);
        let base_sent = base.stats.sends as f64;
        // GS is state-change-driven: fault placements that lower no
        // level exchange no messages at all, so both counts are 0 and
        // the overhead of reliability is exactly 1.
        let gs_overhead = if base_sent == 0.0 {
            1.0
        } else {
            gs_sent / base_sent
        };

        let mut t = Trial {
            gs_ok: run.quiescent && run.links_abandoned == 0 && run.map.store() == central.store(),
            gs_time: run.stats.end_time as f64,
            gs_overhead,
            feasible: 0,
            delivered: 0,
            retransmits: 0,
            duplicates_surfaced: 0,
            obs: Metrics::new(0, 0),
        };
        for _ in 0..p.pairs_per_instance {
            let (s, d) = random_pair(&cfg, rng);
            if s == d || !route(&cfg, &central, s, d).delivered {
                continue;
            }
            t.feasible += 1;
            let (urun, uobs) = run_unicast_lossy_observed(
                &cfg,
                &central,
                s,
                d,
                1,
                prof.channel(rng.gen()),
                rcfg,
                p.event_budget,
            );
            obs.merge(&uobs);
            if let LossyOutcome::Delivered { retransmits, .. } = urun.outcome {
                t.delivered += 1;
                t.retransmits += retransmits;
            }
            t.duplicates_surfaced += urun.duplicate_deliveries;
        }
        t.obs = obs;
        t
    })
}

/// Runs the sweep.
pub fn run(p: &LossParams) -> Report {
    let mut rep = Report::new(
        "loss",
        format!(
            "loss robustness: reliable GS + unicast, {}-cube, {} instances/point",
            p.n, p.trials
        ),
        &[
            "profile",
            "loss",
            "faults",
            "gs_converged",
            "gs_time",
            "msg_overhead",
            "delivery",
            "retx_per_msg",
        ],
    );
    let mut point = 0u64;
    let mut agg = Metrics::new(0, 0);
    for prof in &STANDARD_PROFILES {
        let mut m = 0usize;
        loop {
            let trials = run_point(p, prof, m, point * 0x9E37);
            point += 1;
            for t in &trials {
                agg.merge(&t.obs);
            }
            let converged = trials.iter().filter(|t| t.gs_ok).count() as u64;
            let times: Vec<f64> = trials.iter().map(|t| t.gs_time).collect();
            let overheads: Vec<f64> = trials.iter().map(|t| t.gs_overhead).collect();
            let feasible: u64 = trials.iter().map(|t| t.feasible as u64).sum();
            let delivered: u64 = trials.iter().map(|t| t.delivered as u64).sum();
            let retx: u64 = trials.iter().map(|t| t.retransmits).sum();
            let dups: u64 = trials.iter().map(|t| t.duplicates_surfaced).sum();
            assert_eq!(dups, 0, "reliable layer leaked a duplicate to an actor");
            rep.row(vec![
                prof.name.to_string(),
                format!("{:.2}", prof.loss),
                m.to_string(),
                pct(converged, trials.len() as u64),
                f2(mean(&times)),
                f2(mean(&overheads)),
                pct(delivered, feasible),
                f2(if delivered == 0 {
                    0.0
                } else {
                    retx as f64 / delivered as f64
                }),
            ]);
            if m >= p.max_faults {
                break;
            }
            m = (m + p.step).min(p.max_faults);
        }
    }
    rep.note(
        "gs_converged: runs that went quiescent at exactly the centralized fixed point \
         with no link abandoned by the retry budget"
            .to_string(),
    );
    rep.note(
        "msg_overhead: messages injected (data + ACKs + retransmissions) relative to the \
         same protocol on a lossless channel — the price of reliability under that loss rate"
            .to_string(),
    );
    rep.note(
        "delivery: fraction of unicasts the centralized algorithm calls feasible that the \
         lossy distributed run actually delivered; duplicates surfaced to actors are \
         asserted to be zero"
            .to_string(),
    );
    if let Some(dir) = &p.out_dir {
        let snap = agg.snapshot();
        let json_path = dir.join("loss_obs.json");
        let csv_path = dir.join("loss_obs.csv");
        match std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&json_path, snap.to_json()))
            .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
        {
            Ok(()) => rep.note(format!(
                "metrics snapshot over every lossy run (all profiles × fault counts): {} and {}",
                json_path.display(),
                csv_path.display()
            )),
            Err(e) => rep.note(format!("metrics snapshot write failed: {e}")),
        };
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LossParams {
        LossParams {
            n: 4,
            max_faults: 2,
            step: 2,
            trials: 6,
            pairs_per_instance: 2,
            event_budget: 500_000,
            seed: 9,
            out_dir: None,
        }
    }

    #[test]
    fn clean_profile_is_the_baseline() {
        let rep = run(&tiny());
        // First rows belong to the "clean" profile: unit overhead,
        // full convergence, full delivery.
        assert_eq!(rep.rows[0][0], "clean");
        assert_eq!(rep.rows[0][3], "100.0%");
        assert_eq!(rep.rows[0][5], "1.00");
        assert_eq!(rep.rows[0][6], "100.0%");
    }

    #[test]
    fn every_profile_converges_and_delivers() {
        let rep = run(&tiny());
        for row in &rep.rows {
            assert_eq!(row[3], "100.0%", "profile {} faults {}", row[0], row[2]);
            assert_eq!(row[6], "100.0%", "profile {} faults {}", row[0], row[2]);
        }
        // Heavy loss must actually cost retransmissions somewhere.
        let heavy_retx: f64 = rep
            .rows
            .iter()
            .filter(|r| r[0] == "heavy")
            .map(|r| r[7].parse::<f64>().unwrap())
            .sum();
        assert!(heavy_retx > 0.0, "20% loss with zero retransmissions");
    }
}
