//! E23 — deterministic simulation testing (`repro dst`): sweep seeded
//! adversarial schedules over cube sizes, fault densities and loss
//! profiles, checking the full invariant suite
//! ([`hypersafe_core::invariants`]) on every run. Each seed fully
//! determines its scenario — fault placement, source/destination pair,
//! channel noise, scheduler permutation and kill plan — so any
//! violation replays exactly from the coordinates printed in the
//! artifact, and the kill plan is delta-debugged
//! ([`hypersafe_simkit::shrink_injections`]) down to a 1-minimal
//! reproducer before it is written out.

use crate::table::{pct, Report};
use hypersafe_core::invariants::{
    check_gs_convergence, check_lossy_outcome, run_delta_gs_checked, run_gs_async_checked,
    run_gs_async_checked_traced, run_unicast_lossy_checked, run_unicast_lossy_checked_traced,
};
use hypersafe_core::{
    run_gs_reliable_observed, run_unicast_lossy_observed, ChurnEvent, Decision, LossyOutcome,
    SafetyMap,
};
use hypersafe_simkit::{
    shrink_injections, AdversarialScheduler, Metrics, ReliableConfig, Scheduler, Time,
};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep, STANDARD_PROFILES};
use rand::Rng;
use std::path::PathBuf;

/// Parameters for the DST sweep.
#[derive(Clone, Debug)]
pub struct DstParams {
    /// Cube dimensions to sweep.
    pub dims: Vec<u8>,
    /// Seeds (= independent scenarios) per (dimension, fault count).
    pub seeds: u32,
    /// Event budget per unicast run.
    pub event_budget: u64,
    /// Master seed; every scenario derives from it deterministically.
    pub seed: u64,
    /// Where `dst.csv` and violation artifacts land.
    pub out_dir: PathBuf,
}

impl Default for DstParams {
    fn default() -> Self {
        DstParams {
            dims: vec![3, 4, 5, 6, 7, 8],
            seeds: 256,
            event_budget: 2_000_000,
            seed: 0xD57,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Fault counts swept per dimension: fault-free, half-loaded, the
/// Theorem-3 boundary (`n - 1` faults still guarantees feasibility),
/// and past it (`n + 1`, where `Failure` verdicts become legitimate
/// and only their *soundness* is checked).
fn densities(n: u8) -> Vec<usize> {
    let n = n as usize;
    let mut ms = vec![0, n / 2, n - 1, n + 1];
    ms.dedup();
    ms
}

/// Everything one seed does, reconstructible from `(params, n, m, i)`
/// alone — the sweep runs it blind, and a violation re-runs it traced.
struct Scenario {
    cfg: FaultConfig,
    map: SafetyMap,
    gs_seed: u64,
    gs_stretch: Time,
    s: NodeId,
    d: NodeId,
    profile: usize,
    uni_seed: u64,
    kills: Vec<(NodeId, Time)>,
    delta_event: ChurnEvent,
    delta_seed: u64,
}

impl Scenario {
    fn build(sweep: &Sweep, n: u8, m: usize, i: u32) -> Scenario {
        let mut rng = sweep.trial_rng(i);
        let cube = Hypercube::new(n);
        let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, &mut rng));
        let map = SafetyMap::compute(&cfg);
        let gs_seed: u64 = rng.gen();
        let gs_stretch = 1 + gs_seed % 7;
        let (mut s, mut d) = random_pair(&cfg, &mut rng);
        while s == d {
            let (s2, d2) = random_pair(&cfg, &mut rng);
            s = s2;
            d = d2;
        }
        let profile = (i as usize) % STANDARD_PROFILES.len();
        let uni_seed: u64 = rng.gen();
        let mut kills = Vec::new();
        if rng.gen_bool(0.25) {
            for _ in 0..rng.gen_range(1..=2) {
                let victim = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                if victim != s && !cfg.node_faulty(victim) {
                    kills.push((victim, rng.gen_range(0..30)));
                }
            }
        }
        // Delta-GS leg: one churn event from this configuration (drawn
        // last so the earlier scenario coordinates stay stable).
        let delta_seed: u64 = rng.gen();
        let delta_event = if !cfg.node_faults().is_empty() && rng.gen_bool(0.5) {
            let victims: Vec<NodeId> = cfg.node_faults().iter().collect();
            ChurnEvent::Recover(victims[rng.gen_range(0..victims.len())])
        } else {
            loop {
                let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
                if !cfg.node_faulty(v) {
                    break ChurnEvent::Fault(v);
                }
            }
        };
        Scenario {
            cfg,
            map,
            gs_seed,
            gs_stretch,
            s,
            d,
            profile,
            uni_seed,
            kills,
            delta_event,
            delta_seed,
        }
    }

    /// The delta-GS leg: apply the scenario's churn event through the
    /// distributed delta protocol under a reorder/stretch adversary
    /// (checked runner: corridor invariant + final exactness) and
    /// cross-check the centralized worklist engine against it.
    fn delta_violation(&self) -> Option<String> {
        let mut cfg2 = self.cfg.clone();
        match self.delta_event {
            ChurnEvent::Fault(a) => {
                cfg2.node_faults_mut().insert(a);
            }
            ChurnEvent::Recover(a) => {
                cfg2.node_faults_mut().remove(a);
            }
        }
        let sched = Box::new(
            AdversarialScheduler::permute(self.delta_seed).with_stretch(1 + self.delta_seed % 7),
        );
        match run_delta_gs_checked(&cfg2, &self.map, self.delta_event, 1, sched) {
            Err(v) => Some(v.to_string()),
            Ok(run) => {
                let mut central = self.map.clone();
                match self.delta_event {
                    ChurnEvent::Fault(a) => central.apply_fault(&cfg2, a),
                    ChurnEvent::Recover(a) => central.apply_recover(&cfg2, a),
                };
                (central.store() != run.map.store()).then(|| {
                    format!(
                        "centralized incremental update diverged from delta-GS for {:?}",
                        self.delta_event
                    )
                })
            }
        }
    }

    /// Reorder/stretch adversary for the GS leg (the plain protocol
    /// assumes reliable links, so no loss/duplication here).
    fn gs_sched(&self) -> Box<dyn Scheduler> {
        Box::new(AdversarialScheduler::permute(self.gs_seed).with_stretch(self.gs_stretch))
    }

    /// Full adversary for the unicast leg: channel loss from the
    /// workload profile plus seeded reorder/loss/duplication bursts —
    /// the ARQ layer is expected to absorb all of it.
    fn uni_sched(&self) -> Box<dyn Scheduler> {
        Box::new(AdversarialScheduler::from_seed(self.uni_seed))
    }

    fn channel(&self) -> Option<hypersafe_simkit::ChannelModel> {
        let prof = &STANDARD_PROFILES[self.profile];
        if prof.loss == 0.0 && prof.jitter == 0 && prof.duplicate == 0.0 {
            None
        } else {
            Some(prof.channel(self.uni_seed))
        }
    }

    /// The unicast leg as a pass/fail predicate over an arbitrary kill
    /// plan — exactly the shape [`shrink_injections`] minimizes.
    fn unicast_violation(&self, budget: u64, kills: &[(NodeId, Time)]) -> Option<String> {
        match run_unicast_lossy_checked(
            &self.cfg,
            &self.map,
            self.s,
            self.d,
            1,
            self.channel(),
            self.uni_sched(),
            ReliableConfig::default(),
            budget,
            kills,
        ) {
            Err(v) => Some(v.to_string()),
            Ok(run) => check_lossy_outcome(&self.cfg, self.s, self.d, &run, kills.len() as u64)
                .err()
                .map(|v| format!("{v:?}")),
        }
    }
}

/// One seed's verdicts.
struct SeedOutcome {
    gs_violation: Option<String>,
    delta_violation: Option<String>,
    uni_violation: Option<String>,
    delivered: bool,
    refused: bool,
    kills: usize,
}

impl SeedOutcome {
    fn violated(&self) -> bool {
        self.gs_violation.is_some()
            || self.delta_violation.is_some()
            || self.uni_violation.is_some()
    }
}

fn run_seed(sweep: &Sweep, n: u8, m: usize, i: u32, budget: u64) -> SeedOutcome {
    let sc = Scenario::build(sweep, n, m, i);
    let gs_violation = match run_gs_async_checked(&sc.cfg, 1, sc.gs_sched()) {
        Err(v) => Some(v.to_string()),
        Ok(run) => check_gs_convergence(&sc.cfg, &run)
            .err()
            .map(|v| format!("{v:?}")),
    };
    let delta_violation = sc.delta_violation();
    let mut delivered = false;
    let mut refused = false;
    let uni_violation = match run_unicast_lossy_checked(
        &sc.cfg,
        &sc.map,
        sc.s,
        sc.d,
        1,
        sc.channel(),
        sc.uni_sched(),
        ReliableConfig::default(),
        budget,
        &sc.kills,
    ) {
        Err(v) => Some(v.to_string()),
        Ok(run) => {
            delivered = matches!(run.outcome, LossyOutcome::Delivered { .. });
            refused = matches!(run.decision, Decision::Failure);
            check_lossy_outcome(&sc.cfg, sc.s, sc.d, &run, sc.kills.len() as u64)
                .err()
                .map(|v| format!("{v:?}"))
        }
    };
    SeedOutcome {
        gs_violation,
        delta_violation,
        uni_violation,
        delivered,
        refused,
        kills: sc.kills.len(),
    }
}

/// Replays a violating seed with tracing on, shrinks its kill plan to
/// a 1-minimal reproducer, and renders the replay artifact.
fn artifact(p: &DstParams, sweep: &Sweep, n: u8, m: usize, i: u32, out: &SeedOutcome) -> String {
    let sc = Scenario::build(sweep, n, m, i);
    let faults: Vec<String> = sc.cfg.node_faults().iter().map(|a| a.to_string()).collect();
    let mut art = String::new();
    art.push_str("== DST violation ==\n");
    art.push_str(&format!(
        "replay: repro dst --seed {} (n={n} faults={m} seed-index={i})\n",
        p.seed
    ));
    art.push_str(&format!("fault set: [{}]\n", faults.join(", ")));
    art.push_str(&format!(
        "pair: {} -> {}  profile: {}  gs_seed: {:#x}  uni_seed: {:#x}\n",
        sc.s, sc.d, STANDARD_PROFILES[sc.profile].name, sc.gs_seed, sc.uni_seed
    ));
    if let Some(v) = &out.gs_violation {
        art.push_str(&format!("gs violation: {v}\n"));
        let (_, trace) = run_gs_async_checked_traced(&sc.cfg, 1, sc.gs_sched(), true);
        art.push_str("-- gs replay trace --\n");
        art.push_str(&trace.render());
    }
    if let Some(v) = &out.delta_violation {
        art.push_str(&format!(
            "delta-gs violation: {v}\n  event: {:?}  delta_seed: {:#x}\n",
            sc.delta_event, sc.delta_seed
        ));
    }
    if let Some(v) = &out.uni_violation {
        art.push_str(&format!("unicast violation: {v}\n"));
        let shrunk = shrink_injections(&sc.kills, |ks| {
            sc.unicast_violation(p.event_budget, ks).is_some()
        });
        art.push_str(&format!(
            "kill plan: {:?} shrunk to {:?}\n",
            sc.kills, shrunk
        ));
        let (_, trace) = run_unicast_lossy_checked_traced(
            &sc.cfg,
            &sc.map,
            sc.s,
            sc.d,
            1,
            sc.channel(),
            sc.uni_sched(),
            ReliableConfig::default(),
            p.event_budget,
            &shrunk,
            true,
        );
        art.push_str("-- unicast replay trace --\n");
        art.push_str(&trace.render());
    }
    art
}

/// The sweep's outcome: the report plus the violation count the
/// `repro` binary turns into its exit code.
pub struct DstRun {
    /// Renderable summary table (one row per dimension × fault count).
    pub report: Report,
    /// Total invariant violations across all seeds.
    pub violations: u64,
}

/// Runs the sweep; writes `dst.csv` and any violation artifacts into
/// `p.out_dir`.
pub fn run(p: &DstParams) -> DstRun {
    let mut rep = Report::new(
        "dst",
        format!(
            "deterministic simulation testing: {} seeds per point, full invariant suite",
            p.seeds
        ),
        &[
            "n",
            "faults",
            "seeds",
            "gs_viol",
            "delta_viol",
            "uni_viol",
            "delivered",
            "refused",
            "killed_runs",
        ],
    );
    let mut violations = 0u64;
    let mut artifacts: Vec<PathBuf> = Vec::new();
    let mut obs = Metrics::new(0, 0);
    for &n in &p.dims {
        for m in densities(n) {
            let sweep = Sweep::new(p.seeds, p.seed ^ ((n as u64) << 32) ^ ((m as u64) << 16));
            let outcomes = sweep.run(|i, _| run_seed(&sweep, n, m, i, p.event_budget));
            // One representative observed replay per point (seed 0's
            // scenario, FIFO order): the checked adversarial runs stay
            // untouched, and the aggregated registry still samples
            // every dimension × density of the sweep for dst_obs.json.
            let sc = Scenario::build(&sweep, n, m, 0);
            let prof = &STANDARD_PROFILES[sc.profile];
            let (_, gsm) = run_gs_reliable_observed(
                &sc.cfg,
                prof.channel(sc.gs_seed),
                ReliableConfig::default(),
                1,
                p.event_budget,
            );
            obs.merge(&gsm);
            if sc.s != sc.d {
                let (_, um) = run_unicast_lossy_observed(
                    &sc.cfg,
                    &sc.map,
                    sc.s,
                    sc.d,
                    1,
                    prof.channel(sc.uni_seed),
                    ReliableConfig::default(),
                    p.event_budget,
                );
                obs.merge(&um);
            }
            let gs_viol = outcomes.iter().filter(|o| o.gs_violation.is_some()).count();
            let delta_viol = outcomes
                .iter()
                .filter(|o| o.delta_violation.is_some())
                .count();
            let uni_viol = outcomes
                .iter()
                .filter(|o| o.uni_violation.is_some())
                .count();
            let delivered = outcomes.iter().filter(|o| o.delivered).count();
            let refused = outcomes.iter().filter(|o| o.refused).count();
            let killed = outcomes.iter().filter(|o| o.kills > 0).count();
            violations += (gs_viol + delta_viol + uni_viol) as u64;
            // Shrink and dump the first violating seed of this point;
            // one minimal reproducer per point keeps artifacts readable.
            if let Some((i, out)) = outcomes.iter().enumerate().find(|(_, o)| o.violated()) {
                let text = artifact(p, &sweep, n, m, i as u32, out);
                let path = p.out_dir.join(format!("dst_violation_n{n}_m{m}.txt"));
                if std::fs::create_dir_all(&p.out_dir).is_ok()
                    && std::fs::write(&path, &text).is_ok()
                {
                    artifacts.push(path);
                }
            }
            rep.row(vec![
                n.to_string(),
                m.to_string(),
                p.seeds.to_string(),
                gs_viol.to_string(),
                delta_viol.to_string(),
                uni_viol.to_string(),
                pct(delivered as u64, p.seeds as u64),
                refused.to_string(),
                killed.to_string(),
            ]);
        }
    }
    rep.note(
        "every seed runs async GS under a reorder/stretch adversary (levels must descend \
         monotonically to the Theorem 1 fixed point) and one reliable unicast under channel \
         loss + seeded loss/dup bursts + mid-run kills (exactly-once, trail validity, \
         Theorem 2/3 hop counts, Theorem 4 soundness)"
            .to_string(),
    );
    rep.note(
        "refused counts source-side Failure verdicts (legal only when disconnected or \
         faults >= n — the soundness checker verifies each one); killed_runs had mid-run \
         fault injections, which excuse missing deliveries but nothing else"
            .to_string(),
    );
    rep.note(
        "delta_viol: each seed also replays one churn event (fault or recovery) through \
         delta-GS under its own reorder/stretch adversary — levels must stay inside the \
         [target, previous] corridor, land exactly on the recomputed fixed point, and \
         match the centralized incremental worklist byte-for-byte"
            .to_string(),
    );
    for path in &artifacts {
        rep.note(format!("violation artifact: {}", path.display()));
    }
    match rep.write_csv(&p.out_dir) {
        Ok(path) => {
            rep.note(format!("csv: {}", path.display()));
        }
        Err(e) => {
            rep.note(format!("csv write failed: {e}"));
        }
    }
    let snap = obs.snapshot();
    let json_path = p.out_dir.join("dst_obs.json");
    let csv_path = p.out_dir.join("dst_obs.csv");
    match std::fs::create_dir_all(&p.out_dir)
        .and_then(|()| std::fs::write(&json_path, snap.to_json()))
        .and_then(|()| std::fs::write(&csv_path, snap.to_csv()))
    {
        Ok(()) => {
            rep.note(format!(
                "metrics snapshot (one observed FIFO replay per point): {} and {}",
                json_path.display(),
                csv_path.display()
            ));
        }
        Err(e) => {
            rep.note(format!("metrics snapshot write failed: {e}"));
        }
    }
    DstRun {
        report: rep,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DstParams {
        DstParams {
            dims: vec![3, 4],
            seeds: 8,
            event_budget: 500_000,
            seed: 11,
            out_dir: std::env::temp_dir().join("hypersafe_dst_test"),
        }
    }

    #[test]
    fn tiny_sweep_is_clean() {
        let run = run(&tiny());
        assert_eq!(run.violations, 0, "{}", run.report.render());
        // Four densities per dimension (0, n/2, n-1, n+1).
        assert_eq!(
            run.report.rows.len(),
            densities(3).len() + densities(4).len()
        );
        let _ = std::fs::remove_dir_all(tiny().out_dir);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let sweep = Sweep::new(8, 42);
        let a = Scenario::build(&sweep, 4, 2, 3);
        let b = Scenario::build(&sweep, 4, 2, 3);
        assert_eq!(a.gs_seed, b.gs_seed);
        assert_eq!(a.uni_seed, b.uni_seed);
        assert_eq!((a.s, a.d), (b.s, b.d));
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.delta_event, b.delta_event);
        assert_eq!(a.delta_seed, b.delta_seed);
        assert_eq!(
            a.cfg.node_faults().iter().collect::<Vec<_>>(),
            b.cfg.node_faults().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn densities_cover_the_theorem3_boundary() {
        assert_eq!(densities(3), vec![0, 1, 2, 4]);
        assert_eq!(densities(8), vec![0, 4, 7, 9]);
    }
}
