//! E5 — Property 2 and the no-failure guarantee: in an `n`-cube with
//! fewer than `n` faults, every nonfaulty unsafe node has a safe
//! neighbor, and consequently every unicast is at least suboptimal.

use crate::table::{pct, Report};
use hypersafe_core::{
    check_never_fails_under_n_faults, check_property2, route, Condition, Decision, SafetyMap,
};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};

/// Parameters for the Property 2 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Property2Params {
    /// Cube dimensions to test.
    pub dims: [u8; 4],
    /// Instances per (n, m) point.
    pub trials: u32,
    /// Unicast pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for Property2Params {
    fn default() -> Self {
        Property2Params {
            dims: [4, 6, 8, 10],
            trials: 150,
            pairs_per_instance: 8,
            seed: 0xF00D,
        }
    }
}

/// Runs the verification sweep.
pub fn run(p: &Property2Params) -> Report {
    let mut rep = Report::new(
        "property2",
        "Property 2 + Theorem 3 — guarantee regime (< n faults)",
        &[
            "n",
            "faults",
            "instances",
            "p2_violations",
            "failures",
            "optimal",
            "suboptimal",
        ],
    );
    for &n in &p.dims {
        let cube = Hypercube::new(n);
        for m in [1usize, (n / 2) as usize, (n - 1) as usize] {
            let sweep = Sweep::new(p.trials, p.seed ^ ((n as u64) << 32) ^ m as u64);
            let results: Vec<(u32, u32, u32, u32)> = sweep.run(|_, rng| {
                let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
                let map = SafetyMap::compute(&cfg);
                let p2 = check_property2(&cfg, &map).is_err() as u32;
                // Full never-fails check is O(4ⁿ); do it exhaustively on
                // small cubes and by sampling on larger ones.
                let mut failures = 0u32;
                let mut optimal = 0u32;
                let mut suboptimal = 0u32;
                if n <= 5 && check_never_fails_under_n_faults(&cfg, &map).is_err() {
                    failures += 1;
                }
                for _ in 0..p.pairs_per_instance {
                    let (s, d) = random_pair(&cfg, rng);
                    let res = route(&cfg, &map, s, d);
                    match res.decision {
                        Decision::Optimal {
                            condition: Condition::C1 | Condition::C2,
                            ..
                        } => optimal += 1,
                        Decision::Optimal { .. } => optimal += 1,
                        Decision::Suboptimal { .. } => suboptimal += 1,
                        Decision::Failure => failures += 1,
                        Decision::AlreadyThere => {}
                    }
                    if !res.delivered {
                        failures += 1;
                    }
                }
                (p2, failures, optimal, suboptimal)
            });
            let p2v: u32 = results.iter().map(|r| r.0).sum();
            let fails: u32 = results.iter().map(|r| r.1).sum();
            let opt: u64 = results.iter().map(|r| r.2 as u64).sum();
            let sub: u64 = results.iter().map(|r| r.3 as u64).sum();
            assert_eq!(p2v, 0, "Property 2 violated at n={n} m={m}");
            assert_eq!(fails, 0, "no-failure guarantee violated at n={n} m={m}");
            rep.row(vec![
                n.to_string(),
                m.to_string(),
                p.trials.to_string(),
                p2v.to_string(),
                fails.to_string(),
                pct(opt, opt + sub),
                pct(sub, opt + sub),
            ]);
        }
    }
    rep.note("zero violations across every sampled instance — both claims hold".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_zero_violations() {
        let p = Property2Params {
            dims: [3, 4, 5, 6],
            trials: 25,
            pairs_per_instance: 4,
            seed: 3,
        };
        let rep = run(&p);
        for row in &rep.rows {
            assert_eq!(row[3], "0");
            assert_eq!(row[4], "0");
        }
        assert_eq!(rep.rows.len(), 12);
    }
}
