//! E11 — status-identification cost: rounds of neighbor information
//! exchange needed by safety levels (Definition 1, bound `n − 1`)
//! versus the Lee–Hayes and Wu–Fernandez demotion processes (bound
//! `O(n²)` per the paper).

use crate::table::{f2, Report};
use hypersafe_baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe_core::run_gs;
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{mean, uniform_faults, Sweep};

/// Parameters for the rounds comparison.
#[derive(Clone, Copy, Debug)]
pub struct RoundsParams {
    /// Cube dimension.
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Trials per fault count.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for RoundsParams {
    fn default() -> Self {
        RoundsParams {
            n: 7,
            max_faults: 21,
            trials: 300,
            seed: 0xC0DE,
        }
    }
}

/// Runs the comparison.
pub fn run(p: &RoundsParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "rounds_compare",
        format!(
            "status rounds: GS vs LH vs WF, {}-cube, {} trials/point",
            p.n, p.trials
        ),
        &[
            "faults", "gs_mean", "gs_max", "lh_mean", "lh_max", "wf_mean", "wf_max",
        ],
    );
    let mut gs_overall_max = 0u32;
    for m in 0..=p.max_faults {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let results: Vec<(u32, u32, u32)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let gs = run_gs(&cfg).map.rounds();
            let lh = LeeHayesStatus::compute(&cfg).rounds();
            let wf = WuFernandezStatus::compute(&cfg).rounds();
            (gs, lh, wf)
        });
        let col = |f: fn(&(u32, u32, u32)) -> u32| -> (f64, u32) {
            let xs: Vec<f64> = results.iter().map(|r| f(r) as f64).collect();
            (mean(&xs), xs.iter().cloned().fold(0.0, f64::max) as u32)
        };
        let (gs_m, gs_x) = col(|r| r.0);
        let (lh_m, lh_x) = col(|r| r.1);
        let (wf_m, wf_x) = col(|r| r.2);
        gs_overall_max = gs_overall_max.max(gs_x);
        rep.row(vec![
            m.to_string(),
            f2(gs_m),
            gs_x.to_string(),
            f2(lh_m),
            lh_x.to_string(),
            f2(wf_m),
            wf_x.to_string(),
        ]);
    }
    assert!(
        gs_overall_max <= (p.n - 1) as u32,
        "GS round bound n − 1 (Corollary to Property 1)"
    );
    rep.note(format!("GS never exceeded its n − 1 = {} bound", p.n - 1));
    rep.note("LH/WF demotion rounds are unbounded by n − 1 (paper: O(n²) worst case)".to_string());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs_bounded_lh_can_exceed() {
        let p = RoundsParams {
            n: 6,
            max_faults: 12,
            trials: 80,
            seed: 77,
        };
        let rep = run(&p);
        // GS max column never exceeds 5.
        for row in &rep.rows {
            let gs_max: u32 = row[2].parse().unwrap();
            assert!(gs_max <= 5);
        }
    }

    #[test]
    fn fault_free_row_is_all_zero() {
        let p = RoundsParams {
            n: 5,
            max_faults: 0,
            trials: 4,
            seed: 1,
        };
        let rep = run(&p);
        assert_eq!(
            rep.rows[0],
            vec!["0", "0.00", "0", "0.00", "0", "0.00", "0"]
        );
    }
}
