//! E12 — safety-level broadcasting (the paper's reference [9], the
//! origin of the concept): coverage and message cost as fault density
//! grows, split by source kind (safe / relayed-unsafe / stranded).

use crate::table::{f2, pct, Report};
use hypersafe_core::{broadcast, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{mean, random_healthy, uniform_faults, Sweep};

/// Parameters for the broadcast sweep.
#[derive(Clone, Copy, Debug)]
pub struct BroadcastParams {
    /// Cube dimension.
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Fault-count step.
    pub step: usize,
    /// Instances per fault count.
    pub trials: u32,
    /// Broadcast sources per instance.
    pub sources_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for BroadcastParams {
    fn default() -> Self {
        BroadcastParams {
            n: 7,
            max_faults: 18,
            step: 3,
            trials: 200,
            sources_per_instance: 4,
            seed: 0xB04D,
        }
    }
}

/// Runs the broadcast sweep.
pub fn run(p: &BroadcastParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "broadcast",
        format!(
            "safety-level broadcast, {}-cube, {} instances × {} sources per point",
            p.n, p.trials, p.sources_per_instance
        ),
        &[
            "faults",
            "complete",
            "relayed",
            "mean_steps",
            "mean_msgs",
            "safe_src_incomplete",
        ],
    );
    let mut m = 0usize;
    loop {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let rows: Vec<(u32, u32, f64, f64, u32, u32)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let mut complete = 0u32;
            let mut relayed = 0u32;
            let mut steps = Vec::new();
            let mut msgs = Vec::new();
            let mut safe_incomplete = 0u32;
            for _ in 0..p.sources_per_instance {
                let s = random_healthy(&cfg, rng);
                let r = broadcast(&cfg, &map, s);
                let ok = r.complete(&cfg);
                complete += ok as u32;
                relayed += r.relayed_via.is_some() as u32;
                steps.push(r.steps as f64);
                msgs.push(r.messages as f64);
                if map.is_safe(s) && !ok {
                    safe_incomplete += 1;
                }
            }
            (
                complete,
                relayed,
                mean(&steps),
                mean(&msgs),
                safe_incomplete,
                p.sources_per_instance,
            )
        });
        let complete: u64 = rows.iter().map(|r| r.0 as u64).sum();
        let relayed: u64 = rows.iter().map(|r| r.1 as u64).sum();
        let steps = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let msgs = mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        let safe_bad: u32 = rows.iter().map(|r| r.4).sum();
        let total: u64 = rows.iter().map(|r| r.5 as u64).sum();
        assert_eq!(
            safe_bad, 0,
            "a safe source must always achieve full coverage"
        );
        rep.row(vec![
            m.to_string(),
            pct(complete, total),
            pct(relayed, total),
            f2(steps),
            f2(msgs),
            safe_bad.to_string(),
        ]);
        if m >= p.max_faults {
            break;
        }
        m = (m + p.step).min(p.max_faults);
    }
    rep.note("safe sources achieved complete coverage in every sampled instance".to_string());
    rep.note(
        "with < n faults, unsafe sources relay through a safe neighbor (Property 2)".to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_broadcast_row() {
        let p = BroadcastParams {
            n: 5,
            max_faults: 0,
            step: 1,
            trials: 10,
            sources_per_instance: 2,
            seed: 8,
        };
        let rep = run(&p);
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.rows[0][1], "100.0%");
        assert_eq!(rep.rows[0][2], "0.0%", "no relays without faults");
        assert_eq!(rep.rows[0][4], "31.00", "binomial edge count");
    }

    #[test]
    fn guarantee_regime_is_fully_covered() {
        let p = BroadcastParams {
            n: 6,
            max_faults: 5,
            step: 5,
            trials: 60,
            sources_per_instance: 3,
            seed: 9,
        };
        let rep = run(&p);
        for row in &rep.rows {
            let m: usize = row[0].parse().unwrap();
            if m < 6 {
                assert_eq!(
                    row[1], "100.0%",
                    "complete coverage under n faults: {row:?}"
                );
            }
            assert_eq!(row[5], "0");
        }
    }
}
