//! E20 — scalar safety levels vs safety vectors vs the exact oracle:
//! what fraction of optimally-servable pairs does each admission test
//! accept? The vector costs the same `n − 1` rounds and `n` bits per
//! node, and closes part of the scalar's conservatism gap.

use crate::table::{pct, Report};
use hypersafe_core::{source_decision, Decision, ExactReach, SafetyMap, SafetyVectorMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};

/// Parameters for the admission-rate sweep.
#[derive(Clone, Copy, Debug)]
pub struct VectorsParams {
    /// Cube dimension (exact oracle bound applies).
    pub n: u8,
    /// Largest fault count (inclusive).
    pub max_faults: usize,
    /// Fault-count step.
    pub step: usize,
    /// Instances per point.
    pub trials: u32,
    /// Pairs per instance.
    pub pairs_per_instance: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for VectorsParams {
    fn default() -> Self {
        VectorsParams {
            n: 7,
            max_faults: 16,
            step: 4,
            trials: 60,
            pairs_per_instance: 20,
            seed: 0x5EC7,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &VectorsParams) -> Report {
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "vectors",
        format!(
            "optimal-admission: scalar level vs safety vector vs oracle, {}-cube",
            p.n
        ),
        &[
            "faults",
            "oracle_feasible",
            "scalar_admits",
            "vector_admits",
            "vector_unsound",
        ],
    );
    let mut m = 0usize;
    loop {
        let sweep = Sweep::new(p.trials, p.seed.wrapping_add(m as u64));
        let rows: Vec<(u64, u64, u64, u64, u64)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let vmap = SafetyVectorMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            let mut feasible = 0u64;
            let mut scalar = 0u64;
            let mut vector = 0u64;
            let mut unsound = 0u64;
            let mut pairs = 0u64;
            for _ in 0..p.pairs_per_instance {
                let (s, d) = random_pair(&cfg, rng);
                pairs += 1;
                let oracle = ex.optimal_path_exists(s, d);
                feasible += oracle as u64;
                if matches!(source_decision(&map, s, d), Decision::Optimal { .. }) {
                    scalar += 1;
                }
                if vmap.admits_optimal(&cfg, s, d) {
                    vector += 1;
                    if !oracle {
                        unsound += 1;
                    }
                }
            }
            (pairs, feasible, scalar, vector, unsound)
        });
        let pairs: u64 = rows.iter().map(|r| r.0).sum();
        let feasible: u64 = rows.iter().map(|r| r.1).sum();
        let scalar: u64 = rows.iter().map(|r| r.2).sum();
        let vector: u64 = rows.iter().map(|r| r.3).sum();
        let unsound: u64 = rows.iter().map(|r| r.4).sum();
        assert_eq!(unsound, 0, "vector admission must be sound");
        assert!(vector >= scalar, "vectors dominate scalar admission");
        rep.row(vec![
            m.to_string(),
            pct(feasible, pairs),
            pct(scalar, pairs),
            pct(vector, pairs),
            unsound.to_string(),
        ]);
        if m >= p.max_faults {
            break;
        }
        m = (m + p.step).min(p.max_faults);
    }
    rep.note(
        "both tests cost n − 1 exchange rounds; the vector keeps n bits instead of log n"
            .to_string(),
    );
    rep.note(
        "vector admissions verified sound against the exact oracle on every sampled pair"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_column_dominates_scalar() {
        let p = VectorsParams {
            n: 6,
            max_faults: 8,
            step: 4,
            trials: 20,
            pairs_per_instance: 10,
            seed: 21,
        };
        let rep = run(&p);
        for row in &rep.rows {
            let scalar: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let vector: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(vector >= scalar, "{row:?}");
            assert_eq!(row[4], "0");
        }
    }
}
