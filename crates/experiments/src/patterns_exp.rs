//! E19 — application-shaped traffic: routing behaviour under embedded
//! communication patterns (Gray ring, dimension exchange,
//! bit-reversal, 2-D torus) instead of uniform random pairs. Locality
//! matters: ring/torus/exchange traffic is mostly distance-1 and
//! barely exercises the safety machinery, while bit-reversal crosses
//! the whole cube.

use crate::table::{f2, pct, Report};
use hypersafe_core::{route, Decision, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{pattern_names, pattern_pairs, uniform_faults, Sweep};

/// Parameters for the pattern sweep.
#[derive(Clone, Copy, Debug)]
pub struct PatternsParams {
    /// Cube dimension (even, for the torus embedding).
    pub n: u8,
    /// Fault count per instance.
    pub faults: usize,
    /// Instances per pattern.
    pub trials: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for PatternsParams {
    fn default() -> Self {
        PatternsParams {
            n: 8,
            faults: 7,
            trials: 150,
            seed: 0x9A77,
        }
    }
}

/// Runs the sweep.
pub fn run(p: &PatternsParams) -> Report {
    assert!(p.n.is_multiple_of(2), "torus embedding needs even n");
    let cube = Hypercube::new(p.n);
    let mut rep = Report::new(
        "patterns",
        format!(
            "embedded traffic patterns, {}-cube, {} faults, {} instances",
            p.n, p.faults, p.trials
        ),
        &[
            "pattern",
            "pairs",
            "mean_H",
            "delivered",
            "optimal",
            "mean_detour",
        ],
    );
    for &name in pattern_names() {
        let sweep = Sweep::new(p.trials, p.seed);
        let rows: Vec<(u64, u64, u64, u64, u64, u64)> = sweep.run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, p.faults, rng));
            let map = SafetyMap::compute(&cfg);
            let pairs = pattern_pairs(&cfg, name, 0);
            let mut h_sum = 0u64;
            let mut delivered = 0u64;
            let mut optimal = 0u64;
            let mut hops = 0u64;
            let mut ham = 0u64;
            for &(s, d) in &pairs {
                h_sum += s.distance(d) as u64;
                let res = route(&cfg, &map, s, d);
                if res.delivered {
                    delivered += 1;
                    let path = res.path.as_ref().expect("delivered");
                    hops += path.len() as u64;
                    ham += s.distance(d) as u64;
                    if matches!(res.decision, Decision::Optimal { .. }) {
                        optimal += 1;
                    }
                }
            }
            (pairs.len() as u64, h_sum, delivered, optimal, hops, ham)
        });
        let pairs: u64 = rows.iter().map(|r| r.0).sum();
        let h_sum: u64 = rows.iter().map(|r| r.1).sum();
        let delivered: u64 = rows.iter().map(|r| r.2).sum();
        let optimal: u64 = rows.iter().map(|r| r.3).sum();
        let hops: u64 = rows.iter().map(|r| r.4).sum();
        let ham: u64 = rows.iter().map(|r| r.5).sum();
        rep.row(vec![
            name.to_string(),
            (pairs / p.trials as u64).to_string(),
            f2(h_sum as f64 / pairs.max(1) as f64),
            pct(delivered, pairs),
            pct(optimal, pairs),
            f2((hops - ham) as f64 / delivered.max(1) as f64),
        ]);
    }
    rep.note("mean_H: average Hamming distance of the pattern — its locality".to_string());
    rep.note(
        "bit-reversal is the long-haul stressor; embedded ring/torus traffic is near-neighbor"
            .to_string(),
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_patterns_reported() {
        let p = PatternsParams {
            n: 6,
            faults: 3,
            trials: 20,
            seed: 2,
        };
        let rep = run(&p);
        assert_eq!(rep.rows.len(), 4);
        // Under n faults everything delivers.
        for row in &rep.rows {
            assert_eq!(row[3], "100.0%", "{row:?}");
        }
        // Bit-reversal has the largest mean distance.
        let h = |name: &str| -> f64 {
            rep.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(h("bit-reversal") > h("ring"));
        assert!(h("bit-reversal") > h("exchange"));
    }
}
