//! Property tests for the topology substrate: address algebra, Gray
//! codes, subcube membership, fault-set model checking, connectivity
//! invariants.

use hypersafe_topology::{
    connectivity, e, FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId, Subcube,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn dim() -> impl Strategy<Value = u8> {
    3u8..=8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// XOR address algebra: involution, distance symmetry, triangle
    /// inequality (Hamming metric).
    #[test]
    fn address_algebra(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (NodeId::new(a), NodeId::new(b), NodeId::new(c));
        prop_assert_eq!(a.xor(b), b.xor(a));
        prop_assert_eq!(a.xor(b).xor(b), a);
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert_eq!(a.distance(a), 0);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
    }

    /// e(k) flips exactly bit k.
    #[test]
    fn unit_vectors(a in any::<u64>(), k in 0u8..60) {
        let a = NodeId::new(a);
        prop_assert_eq!(a.xor(e(k)), a.neighbor(k));
        prop_assert_eq!(a.neighbor(k).distance(a), 1);
    }

    /// differing_dims enumerates exactly the set bits of the XOR.
    #[test]
    fn differing_dims_complete(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let dims: Vec<u8> = a.differing_dims(b).collect();
        prop_assert_eq!(dims.len() as u32, a.distance(b));
        let mut rebuilt = a;
        for d in dims {
            rebuilt = rebuilt.neighbor(d);
        }
        prop_assert_eq!(rebuilt, b);
    }

    /// Binary rendering round-trips for in-range addresses.
    #[test]
    fn binary_roundtrip(n in dim(), raw in any::<u64>()) {
        let a = NodeId::new(raw & ((1 << n) - 1));
        prop_assert_eq!(NodeId::from_binary(&a.to_binary(n)), Some(a));
    }

    /// FaultSet behaves exactly like a HashSet<u64> under a random
    /// insert/remove script (model-based check of the bitset).
    #[test]
    fn faultset_model_check(n in dim(), script in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..200)) {
        let cube = Hypercube::new(n);
        let mask = cube.num_nodes() - 1;
        let mut sut = FaultSet::new(cube);
        let mut model: HashSet<u64> = HashSet::new();
        for (insert, raw) in script {
            let v = raw & mask;
            if insert {
                prop_assert_eq!(sut.insert(NodeId::new(v)), model.insert(v));
            } else {
                prop_assert_eq!(sut.remove(NodeId::new(v)), model.remove(&v));
            }
            prop_assert_eq!(sut.len(), model.len());
        }
        let listed: HashSet<u64> = sut.iter().map(NodeId::raw).collect();
        prop_assert_eq!(listed, model);
    }

    /// Gray code: rank inversion and unit adjacency.
    #[test]
    fn gray_code_props(i in 0u64..(1 << 20)) {
        use hypersafe_topology::gray::{gray, gray_rank};
        prop_assert_eq!(gray_rank(gray(i)), i);
        prop_assert_eq!(gray(i).distance(gray(i + 1)), 1);
    }

    /// Subcube membership matches its node enumeration exactly.
    #[test]
    fn subcube_members(n in 3u8..=6, fixed in any::<u64>(), free in any::<u64>()) {
        let mask = (1u64 << n) - 1;
        let free_mask = free & mask;
        let fixed_ones = fixed & mask & !free_mask;
        let sc = Subcube { fixed_ones, free_mask };
        let cube = Hypercube::new(n);
        let members: HashSet<u64> = sc.nodes().map(NodeId::raw).collect();
        prop_assert_eq!(members.len() as u64, sc.len());
        for a in cube.nodes() {
            prop_assert_eq!(sc.contains(a), members.contains(&a.raw()), "{}", a);
        }
    }

    /// Components partition the healthy nodes; BFS distance is finite
    /// exactly within a component and ≥ the Hamming distance.
    #[test]
    fn connectivity_invariants(n in 3u8..=6, faults in proptest::collection::btree_set(0u64..64, 0..20)) {
        let cube = Hypercube::new(n);
        let mask = cube.num_nodes() - 1;
        let f = FaultSet::from_nodes(cube, faults.into_iter().map(|v| NodeId::new(v & mask)));
        let cfg = FaultConfig::with_node_faults(cube, f);
        let comps = connectivity::components(&cfg);
        // Partition: every healthy node in exactly one component.
        let mut seen: HashSet<u64> = HashSet::new();
        for c in &comps {
            for a in c {
                prop_assert!(!cfg.node_faulty(*a));
                prop_assert!(seen.insert(a.raw()), "node in two components");
            }
        }
        prop_assert_eq!(seen.len() as u64, cfg.healthy_count());
        // Distances.
        for c in comps.iter().take(2) {
            let src = c[0];
            let dist = connectivity::bfs_distances(&cfg, src);
            for a in cfg.healthy_nodes() {
                let in_same = c.contains(&a);
                let reached = dist[a.raw() as usize] != connectivity::UNREACHED;
                prop_assert_eq!(in_same, reached);
                if reached {
                    prop_assert!(dist[a.raw() as usize] >= src.distance(a));
                }
            }
        }
    }

    /// Sentinel hygiene on disconnected cubes: no BFS distance other
    /// than [`connectivity::UNREACHED`] itself ever gets near the
    /// sentinel, so `da + 1` arithmetic provably never ran on an
    /// unreached cell (a leak would plant `0` after wraparound, or a
    /// huge near-MAX value — both are caught here), and unreached is
    /// exactly "outside the source's component".
    #[test]
    fn bfs_sentinel_never_enters_arithmetic(
        n in 3u8..=6,
        faults in proptest::collection::btree_set(0u64..64, 8..28),
        link_seeds in proptest::collection::vec((0u64..64, 0u8..6), 0..10),
        src_seed in 0u64..64,
    ) {
        let cube = Hypercube::new(n);
        let mask = cube.num_nodes() - 1;
        let f = FaultSet::from_nodes(cube, faults.into_iter().map(|v| NodeId::new(v & mask)));
        let mut lf = LinkFaultSet::new();
        for (a, d) in link_seeds {
            let a = NodeId::new(a & mask);
            lf.insert(a, a.neighbor(d % n));
        }
        let cfg = FaultConfig::with_faults(cube, f, lf);
        let src = NodeId::new(src_seed & mask);
        let dist = connectivity::bfs_distances(&cfg, src);
        // Longest simple path bounds every true distance; anything
        // between that and the sentinel is a poisoned value.
        let diameter_bound = cube.num_nodes() as u32;
        let comps = connectivity::components(&cfg);
        let src_comp = comps.iter().find(|c| c.contains(&src));
        for a in cube.nodes() {
            let v = dist[a.raw() as usize];
            if v == connectivity::UNREACHED {
                let same = src_comp.is_some_and(|c| c.contains(&a));
                prop_assert!(!same, "{a} reachable from {src} but marked UNREACHED");
            } else {
                prop_assert!(v < diameter_bound, "poisoned distance {v} at {a}");
                prop_assert!(
                    src_comp.is_some_and(|c| c.contains(&a)),
                    "{a} has finite distance but sits outside {src}'s component"
                );
            }
        }
        // shortest_path's backwalk (`dc - 1`) must agree with the
        // distance array end-to-end, reached or not.
        for a in cube.nodes() {
            let p = connectivity::shortest_path(&cfg, src, a);
            match p {
                Some(p) => prop_assert_eq!(p.len() as u32 - 1, dist[a.raw() as usize]),
                None => prop_assert_eq!(dist[a.raw() as usize], connectivity::UNREACHED),
            }
        }
    }

    /// A link fault never disconnects more than a node fault would:
    /// removing one link keeps the cube connected for n ≥ 2.
    #[test]
    fn single_link_fault_keeps_connectivity(n in 2u8..=7, a in any::<u64>(), d in 0u8..7) {
        let cube = Hypercube::new(n);
        let a = NodeId::new(a & (cube.num_nodes() - 1));
        let d = d % n;
        let mut cfg = FaultConfig::fault_free(cube);
        let mut lf = LinkFaultSet::new();
        lf.insert(a, a.neighbor(d));
        *cfg.link_faults_mut() = lf;
        prop_assert!(connectivity::is_connected(&cfg));
    }
}
