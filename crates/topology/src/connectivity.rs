//! Connectivity analysis of faulty hypercubes.
//!
//! The paper's §3.3 studies *disconnected* hypercubes — faulty cubes
//! whose nonfaulty nodes split into two or more parts. These helpers
//! compute components, reachability, and true shortest paths in the
//! faulty cube, which the experiment harness uses as ground truth when
//! judging routing outcomes.

use crate::addr::NodeId;
use crate::faults::FaultConfig;
use std::collections::VecDeque;

/// Sentinel for "not reached" in distance arrays.
pub const UNREACHED: u32 = u32::MAX;

/// Breadth-first distances from `src` over the nonfaulty subgraph of
/// `cfg` (faulty nodes and faulty links are impassable). Returns a
/// vector indexed by raw address; unreachable or faulty nodes hold
/// [`UNREACHED`]. A faulty `src` yields all-[`UNREACHED`].
pub fn bfs_distances(cfg: &FaultConfig, src: NodeId) -> Vec<u32> {
    let cube = cfg.cube();
    let mut dist = vec![UNREACHED; cube.num_nodes() as usize];
    if cfg.node_faulty(src) {
        return dist;
    }
    dist[src.raw() as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(a) = queue.pop_front() {
        let da = dist[a.raw() as usize];
        // Every dequeued node was assigned a real distance before being
        // enqueued; if the sentinel ever leaked in here, `da + 1` would
        // silently wrap a poisoned distance into the array.
        debug_assert_ne!(da, UNREACHED, "sentinel distance dequeued for {a}");
        for b in cube.neighbors(a) {
            if cfg.link_usable(a, b) && dist[b.raw() as usize] == UNREACHED {
                dist[b.raw() as usize] = da + 1;
                queue.push_back(b);
            }
        }
    }
    dist
}

/// Length of the shortest fault-free path from `s` to `d`, or `None` if
/// `d` is unreachable from `s` (including either endpoint faulty).
pub fn shortest_path_len(cfg: &FaultConfig, s: NodeId, d: NodeId) -> Option<u32> {
    let dist = bfs_distances(cfg, s);
    let v = dist[d.raw() as usize];
    (v != UNREACHED).then_some(v)
}

/// One shortest fault-free path from `s` to `d` as a node sequence
/// (inclusive of both endpoints), or `None` if unreachable.
pub fn shortest_path(cfg: &FaultConfig, s: NodeId, d: NodeId) -> Option<Vec<NodeId>> {
    let dist = bfs_distances(cfg, s);
    if dist[d.raw() as usize] == UNREACHED {
        return None;
    }
    // Walk backwards from d along strictly decreasing distances.
    let cube = cfg.cube();
    let mut path = vec![d];
    let mut cur = d;
    while cur != s {
        let dc = dist[cur.raw() as usize];
        // `cur` starts at a reached node and only moves to strictly
        // closer reached nodes, so `dc - 1` never touches the sentinel.
        debug_assert_ne!(dc, UNREACHED, "sentinel distance on backwalk at {cur}");
        let prev = cube
            .neighbors(cur)
            .find(|&b| dist[b.raw() as usize] == dc - 1 && cfg.link_usable(cur, b))
            .expect("BFS predecessor must exist");
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// Whether `s` and `d` are connected in the faulty cube.
pub fn connected(cfg: &FaultConfig, s: NodeId, d: NodeId) -> bool {
    shortest_path_len(cfg, s, d).is_some()
}

/// Partition of the nonfaulty nodes into connected components.
///
/// Returned components are sorted by their smallest member, and nodes
/// within a component are ascending.
pub fn components(cfg: &FaultConfig) -> Vec<Vec<NodeId>> {
    let cube = cfg.cube();
    let mut seen = vec![false; cube.num_nodes() as usize];
    let mut comps = Vec::new();
    for start in cfg.healthy_nodes() {
        if seen[start.raw() as usize] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.raw() as usize] = true;
        queue.push_back(start);
        while let Some(a) = queue.pop_front() {
            comp.push(a);
            for b in cube.neighbors(a) {
                if cfg.link_usable(a, b) && !seen[b.raw() as usize] {
                    seen[b.raw() as usize] = true;
                    queue.push_back(b);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps
}

/// Whether the faulty cube is connected: all nonfaulty nodes lie in one
/// component. A cube with no nonfaulty nodes counts as connected
/// (vacuously — there is nothing to disconnect).
pub fn is_connected(cfg: &FaultConfig) -> bool {
    components(cfg).len() <= 1
}

/// Whether the faulty cube is *disconnected* in the paper's sense
/// (§3.3): the nonfaulty nodes split into two or more disjoint parts.
pub fn is_disconnected(cfg: &FaultConfig) -> bool {
    !is_connected(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Hypercube;
    use crate::faults::FaultSet;

    fn cfg4(faults: &[&str]) -> FaultConfig {
        let cube = Hypercube::new(4);
        FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, faults))
    }

    #[test]
    fn fault_free_cube_is_connected() {
        let cfg = cfg4(&[]);
        assert!(is_connected(&cfg));
        assert_eq!(components(&cfg).len(), 1);
        // BFS distance equals Hamming distance in the fault-free cube.
        let d = bfs_distances(&cfg, NodeId::ZERO);
        for a in cfg.cube().nodes() {
            assert_eq!(d[a.raw() as usize], a.weight());
        }
    }

    #[test]
    fn fig3_disconnection() {
        // Fig. 3: faults {0110, 1010, 1100, 1111} isolate node 1110.
        let cfg = cfg4(&["0110", "1010", "1100", "1111"]);
        assert!(is_disconnected(&cfg));
        let comps = components(&cfg);
        assert_eq!(comps.len(), 2);
        let small: Vec<NodeId> = vec![NodeId::new(0b1110)];
        assert!(comps.contains(&small), "1110 is its own component");
        assert!(!connected(&cfg, NodeId::new(0b0111), NodeId::new(0b1110)));
        assert!(connected(&cfg, NodeId::new(0b0101), NodeId::new(0b0000)));
    }

    #[test]
    fn shortest_path_detours_around_faults() {
        // Block every optimal path 0000 → 0011 (via 0001 and 0010).
        let cfg = cfg4(&["0001", "0010"]);
        let len = shortest_path_len(&cfg, NodeId::ZERO, NodeId::new(0b0011)).unwrap();
        assert_eq!(len, 4, "H + 2 detour");
        let p = shortest_path(&cfg, NodeId::ZERO, NodeId::new(0b0011)).unwrap();
        assert_eq!(p.len() as u32, len + 1);
        assert_eq!(p[0], NodeId::ZERO);
        assert_eq!(*p.last().unwrap(), NodeId::new(0b0011));
        for w in p.windows(2) {
            assert_eq!(w[0].distance(w[1]), 1);
            assert!(!cfg.node_faulty(w[0]) && !cfg.node_faulty(w[1]));
        }
    }

    #[test]
    fn faulty_source_reaches_nothing() {
        let cfg = cfg4(&["0000"]);
        assert_eq!(shortest_path_len(&cfg, NodeId::ZERO, NodeId::new(1)), None);
        assert!(bfs_distances(&cfg, NodeId::ZERO)
            .iter()
            .all(|&d| d == UNREACHED));
    }

    #[test]
    fn link_fault_forces_detour() {
        let cube = Hypercube::new(3);
        let mut cfg = FaultConfig::fault_free(cube);
        let a = NodeId::new(0b000);
        let b = NodeId::new(0b001);
        cfg.link_faults_mut().insert(a, b);
        assert_eq!(
            shortest_path_len(&cfg, a, b),
            Some(3),
            "around the missing link"
        );
        assert!(is_connected(&cfg));
    }

    #[test]
    fn all_faulty_counts_as_connected() {
        let cube = Hypercube::new(1);
        let mut f = FaultSet::new(cube);
        f.insert(NodeId::new(0));
        f.insert(NodeId::new(1));
        let cfg = FaultConfig::with_node_faults(cube, f);
        assert!(is_connected(&cfg));
        assert!(components(&cfg).is_empty());
    }
}
