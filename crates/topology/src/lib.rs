//! # hypersafe-topology
//!
//! Topology substrate for the *hypersafe* workspace: binary hypercubes
//! `Q_n`, generalized hypercubes `GH(m_{n-1}, …, m_0)`, fault state
//! (nodes and links), connectivity analysis, path representation, and
//! the classic node-disjoint-paths construction.
//!
//! Everything here is deterministic, allocation-light, and independent
//! of the safety-level machinery in `hypersafe-core`; it is the layer
//! the paper's algorithms (and all baselines) are written against.
//!
//! ## Quick tour
//!
//! ```
//! use hypersafe_topology::{Hypercube, NodeId, FaultSet, FaultConfig};
//! use hypersafe_topology::connectivity;
//!
//! // The faulty 4-cube of the paper's Fig. 1.
//! let cube = Hypercube::new(4);
//! let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
//! let cfg = FaultConfig::with_node_faults(cube, faults);
//!
//! assert!(connectivity::is_connected(&cfg));
//! let s = NodeId::from_binary("1110").unwrap();
//! let d = NodeId::from_binary("0001").unwrap();
//! assert_eq!(cube.distance(s, d), 4);
//! assert_eq!(connectivity::shortest_path_len(&cfg, s, d), Some(4));
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod connectivity;
pub mod cube;
pub mod disjoint;
pub mod faults;
pub mod ghn;
pub mod gray;
pub mod paths;

pub use addr::{e, BitDims, NodeId, MAX_DIM};
pub use cube::Hypercube;
pub use faults::{FaultConfig, FaultSet, LinkFaultSet};
pub use ghn::{GeneralizedHypercube, GhNode};
pub use gray::Subcube;
pub use paths::Path;
