//! Gray codes and subcube enumeration.
//!
//! Utility machinery for the workload generators: reflected Gray codes
//! give Hamiltonian orderings of `Q_n` (used by clustered fault
//! injection to pick *contiguous* fault regions), and subcube
//! enumeration supports subcube-shaped fault patterns.

use crate::addr::NodeId;
use crate::cube::Hypercube;

/// The `i`th codeword of the reflected binary Gray code: consecutive
/// indices map to adjacent hypercube nodes.
#[inline]
pub const fn gray(i: u64) -> NodeId {
    NodeId(i ^ (i >> 1))
}

/// Inverse of [`gray`]: the rank of a codeword in the Gray sequence.
pub const fn gray_rank(a: NodeId) -> u64 {
    let mut v = a.0;
    let mut shift = 1;
    while shift < 64 {
        v ^= v >> shift;
        shift <<= 1;
    }
    v
}

/// Iterator over a Hamiltonian cycle of `cube` in Gray order, starting
/// at node 0.
pub fn hamiltonian_cycle(cube: Hypercube) -> impl Iterator<Item = NodeId> {
    (0..cube.num_nodes()).map(gray)
}

/// A subcube of `Q_n`, written in the usual ternary-string style: each
/// dimension is fixed to 0, fixed to 1, or free (`*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Subcube {
    /// Bits fixed to one.
    pub fixed_ones: u64,
    /// Mask of free (don't-care) dimensions.
    pub free_mask: u64,
}

impl Subcube {
    /// Subcube from a ternary string over `{'0','1','*'}`, MSB first.
    ///
    /// # Panics
    /// Panics on other characters — subcube specs are static data.
    pub fn parse(s: &str) -> Subcube {
        let mut fixed_ones = 0u64;
        let mut free_mask = 0u64;
        for c in s.chars() {
            fixed_ones <<= 1;
            free_mask <<= 1;
            match c {
                '0' => {}
                '1' => fixed_ones |= 1,
                '*' => free_mask |= 1,
                _ => panic!("bad subcube char {c:?}"),
            }
        }
        Subcube {
            fixed_ones,
            free_mask,
        }
    }

    /// Number of free dimensions (the subcube's own dimension).
    pub fn dim(self) -> u32 {
        self.free_mask.count_ones()
    }

    /// Number of member nodes, `2^dim`.
    pub fn len(self) -> u64 {
        1 << self.dim()
    }

    /// Whether the subcube has dimension 0 (a single node). Subcubes are
    /// never empty, so this mirrors `len() == 1`.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Whether `a` lies inside this subcube.
    pub fn contains(self, a: NodeId) -> bool {
        a.raw() & !self.free_mask == self.fixed_ones
    }

    /// Iterator over the member nodes, in Gray order within the free
    /// dimensions (so consecutive members are cube-adjacent).
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        let free_dims: Vec<u8> = crate::addr::BitDims(self.free_mask).collect();
        let base = self.fixed_ones;
        (0..(1u64 << free_dims.len())).map(move |i| {
            let g = gray(i).raw();
            let mut v = base;
            for (k, &dim) in free_dims.iter().enumerate() {
                if (g >> k) & 1 == 1 {
                    v |= 1 << dim;
                }
            }
            NodeId::new(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_adjacency() {
        let cube = Hypercube::new(6);
        let cyc: Vec<NodeId> = hamiltonian_cycle(cube).collect();
        assert_eq!(cyc.len(), 64);
        for w in cyc.windows(2) {
            assert_eq!(w[0].distance(w[1]), 1);
        }
        // It is a cycle: last and first are adjacent too.
        assert_eq!(cyc[0].distance(cyc[63]), 1);
        // It is Hamiltonian: all nodes distinct.
        let mut sorted = cyc.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn gray_rank_inverts_gray() {
        for i in 0..1024u64 {
            assert_eq!(gray_rank(gray(i)), i);
        }
    }

    #[test]
    fn subcube_parse_and_membership() {
        let sc = Subcube::parse("1*0*");
        assert_eq!(sc.dim(), 2);
        assert_eq!(sc.len(), 4);
        let members: Vec<u64> = sc.nodes().map(NodeId::raw).collect();
        assert_eq!(members.len(), 4);
        for &m in &members {
            assert!(sc.contains(NodeId::new(m)));
            assert_eq!(m & 0b1000, 0b1000);
            assert_eq!(m & 0b0010, 0);
        }
        assert!(!sc.contains(NodeId::new(0b0000)));
    }

    #[test]
    fn subcube_nodes_gray_adjacent() {
        let sc = Subcube::parse("*1**0");
        let nodes: Vec<NodeId> = sc.nodes().collect();
        assert_eq!(nodes.len(), 8);
        for w in nodes.windows(2) {
            assert_eq!(w[0].distance(w[1]), 1);
        }
    }

    #[test]
    fn point_subcube() {
        let sc = Subcube::parse("101");
        assert_eq!(sc.dim(), 0);
        assert_eq!(sc.nodes().collect::<Vec<_>>(), vec![NodeId::new(0b101)]);
        assert!(!sc.is_empty());
    }
}
