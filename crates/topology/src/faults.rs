//! Fault state of a hypercube: faulty nodes and faulty links.
//!
//! The paper's main development (§2–§3) assumes *fault-stop node faults*
//! only; §4.1 extends to faulty links. [`FaultSet`] is a dense bitset of
//! faulty node addresses; [`LinkFaultSet`] packs faulty undirected links
//! into one bit per (lower endpoint, dimension) pair so the per-hop
//! usability test stays branch-cheap; [`FaultConfig`] combines both and
//! is what algorithms consume.

use crate::addr::NodeId;
use crate::cube::Hypercube;

/// A set of faulty nodes of a hypercube, stored as a dense bitset over
/// the `2ⁿ` addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    bits: Vec<u64>,
    len: usize,
    capacity: u64,
}

impl FaultSet {
    /// Empty fault set for the given cube.
    pub fn new(cube: Hypercube) -> Self {
        Self::with_capacity(cube.num_nodes())
    }

    /// Empty fault set able to hold addresses `0..capacity`.
    pub fn with_capacity(capacity: u64) -> Self {
        let words = capacity.div_ceil(64) as usize;
        FaultSet {
            bits: vec![0; words],
            len: 0,
            capacity,
        }
    }

    /// Builds a fault set from an iterator of faulty addresses.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(cube: Hypercube, nodes: I) -> Self {
        let mut f = Self::new(cube);
        for a in nodes {
            f.insert(a);
        }
        f
    }

    /// Convenience constructor from binary-string addresses, as the
    /// paper's figures list them (e.g. `["0011", "0100"]`).
    ///
    /// # Panics
    /// Panics on an unparsable address — figure instances are static
    /// data, so a typo should fail loudly.
    pub fn from_binary_strs(cube: Hypercube, strs: &[&str]) -> Self {
        Self::from_nodes(
            cube,
            strs.iter().map(|s| {
                NodeId::from_binary(s).unwrap_or_else(|| panic!("bad binary address {s:?}"))
            }),
        )
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no node is faulty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether node `a` is faulty.
    #[inline]
    pub fn contains(&self, a: NodeId) -> bool {
        let i = a.raw();
        debug_assert!(i < self.capacity, "address {i} out of range");
        (self.bits[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Marks `a` faulty; returns `true` if it was previously nonfaulty.
    pub fn insert(&mut self, a: NodeId) -> bool {
        let i = a.raw();
        assert!(i < self.capacity, "address {i} out of range");
        let (w, b) = ((i / 64) as usize, i % 64);
        let fresh = (self.bits[w] >> b) & 1 == 0;
        if fresh {
            self.bits[w] |= 1 << b;
            self.len += 1;
        }
        fresh
    }

    /// Marks `a` nonfaulty again (fault recovery, §2.2); returns `true`
    /// if it was previously faulty.
    pub fn remove(&mut self, a: NodeId) -> bool {
        let i = a.raw();
        assert!(i < self.capacity, "address {i} out of range");
        let (w, b) = ((i / 64) as usize, i % 64);
        let present = (self.bits[w] >> b) & 1 == 1;
        if present {
            self.bits[w] &= !(1 << b);
            self.len -= 1;
        }
        present
    }

    /// The backing bitset words, 64 addresses per word ascending —
    /// the same bit order as a safety bit-plane, so the plane kernels
    /// in `hypersafe-core` can use the fault set directly as their
    /// "level is 0 and pinned" mask without re-packing.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Iterator over the faulty node addresses, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            crate::addr::BitDims(word).map(move |b| NodeId::new((w as u64) * 64 + b as u64))
        })
    }

    /// Number of faulty neighbors of `a` in `cube`.
    pub fn faulty_neighbor_count(&self, cube: Hypercube, a: NodeId) -> usize {
        cube.neighbors(a).filter(|&b| self.contains(b)).count()
    }
}

/// A set of faulty undirected links, stored as a packed bitset: one
/// 64-bit word per lower endpoint, with bit `d` set when the link
/// along dimension `d` (the single differing bit of the endpoints) is
/// faulty. A hypercube has at most 64 dimensions, so a word per node
/// always suffices, and the membership test in the engines' per-hop
/// hot path is two shifts and a mask instead of a hash lookup.
///
/// The backing vector grows lazily with the highest inserted lower
/// endpoint, so the empty set stays allocation-free and equality is
/// defined on set contents, not backing-store length.
#[derive(Clone, Debug, Default)]
pub struct LinkFaultSet {
    bits: Vec<u64>,
    len: usize,
}

impl LinkFaultSet {
    /// Empty link-fault set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical form of the undirected link `a`–`b`: the lower
    /// endpoint and the dimension the endpoints differ in.
    #[inline]
    fn key(a: NodeId, b: NodeId) -> (usize, u32) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (lo.raw() as usize, (lo.raw() ^ hi.raw()).trailing_zeros())
    }

    /// Marks the link between `a` and `b` faulty.
    ///
    /// # Panics
    /// Panics if `a` and `b` are not adjacent (`H(a,b) ≠ 1`).
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_eq!(a.distance(b), 1, "({a}, {b}) is not a hypercube link");
        let (lo, d) = Self::key(a, b);
        if lo >= self.bits.len() {
            self.bits.resize(lo + 1, 0);
        }
        let fresh = (self.bits[lo] >> d) & 1 == 0;
        if fresh {
            self.bits[lo] |= 1 << d;
            self.len += 1;
        }
        fresh
    }

    /// Restores the link between `a` and `b`.
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> bool {
        let (lo, d) = Self::key(a, b);
        let present = lo < self.bits.len() && (self.bits[lo] >> d) & 1 == 1;
        if present {
            self.bits[lo] &= !(1 << d);
            self.len -= 1;
        }
        present
    }

    /// Whether the link between `a` and `b` is faulty.
    #[inline]
    pub fn contains(&self, a: NodeId, b: NodeId) -> bool {
        let x = a.raw() ^ b.raw();
        if !x.is_power_of_two() {
            return false;
        }
        let lo = a.raw().min(b.raw()) as usize;
        lo < self.bits.len() && (self.bits[lo] >> x.trailing_zeros()) & 1 == 1
    }

    /// Number of faulty links.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no link is faulty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over faulty links as `(low, high)` pairs, ascending by
    /// lower endpoint then dimension.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.bits.iter().enumerate().flat_map(|(lo, &word)| {
            crate::addr::BitDims(word)
                .map(move |d| (NodeId::new(lo as u64), NodeId::new(lo as u64 | (1 << d))))
        })
    }

    /// Whether node `a` has at least one adjacent faulty link — i.e.
    /// whether `a` belongs to the paper's set `N2` (§4.1).
    pub fn touches(&self, cube: Hypercube, a: NodeId) -> bool {
        cube.neighbors(a).any(|b| self.contains(a, b))
    }

    /// Iterator over the far endpoints of `a`'s adjacent faulty links.
    pub fn faulty_ends_of<'a>(
        &'a self,
        cube: Hypercube,
        a: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        cube.neighbors(a).filter(move |&b| self.contains(a, b))
    }
}

impl PartialEq for LinkFaultSet {
    fn eq(&self, other: &Self) -> bool {
        // Backing vectors grow lazily, so equal sets may differ in
        // trailing zero words; compare contents, not storage.
        let (short, long) = if self.bits.len() <= other.bits.len() {
            (&self.bits, &other.bits)
        } else {
            (&other.bits, &self.bits)
        };
        self.len == other.len
            && short[..] == long[..short.len()]
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for LinkFaultSet {}

/// Complete fault state of one faulty hypercube instance: the cube, its
/// faulty nodes, and its faulty links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    cube: Hypercube,
    nodes: FaultSet,
    links: LinkFaultSet,
}

impl FaultConfig {
    /// A fault-free instance of `cube`.
    pub fn fault_free(cube: Hypercube) -> Self {
        FaultConfig {
            cube,
            nodes: FaultSet::new(cube),
            links: LinkFaultSet::new(),
        }
    }

    /// An instance with the given faulty nodes and no faulty links.
    pub fn with_node_faults(cube: Hypercube, nodes: FaultSet) -> Self {
        FaultConfig {
            cube,
            nodes,
            links: LinkFaultSet::new(),
        }
    }

    /// An instance with both faulty nodes and faulty links (§4.1).
    pub fn with_faults(cube: Hypercube, nodes: FaultSet, links: LinkFaultSet) -> Self {
        FaultConfig { cube, nodes, links }
    }

    /// The underlying topology.
    #[inline]
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The faulty-node set.
    #[inline]
    pub fn node_faults(&self) -> &FaultSet {
        &self.nodes
    }

    /// Mutable access to the faulty-node set (fault injection/recovery).
    #[inline]
    pub fn node_faults_mut(&mut self) -> &mut FaultSet {
        &mut self.nodes
    }

    /// The faulty-link set.
    #[inline]
    pub fn link_faults(&self) -> &LinkFaultSet {
        &self.links
    }

    /// Mutable access to the faulty-link set.
    #[inline]
    pub fn link_faults_mut(&mut self) -> &mut LinkFaultSet {
        &mut self.links
    }

    /// Whether node `a` is faulty.
    #[inline]
    pub fn node_faulty(&self, a: NodeId) -> bool {
        self.nodes.contains(a)
    }

    /// Whether the link `a`–`b` is usable: both endpoints nonfaulty and
    /// the link itself nonfaulty.
    #[inline]
    pub fn link_usable(&self, a: NodeId, b: NodeId) -> bool {
        !self.nodes.contains(a) && !self.nodes.contains(b) && !self.links.contains(a, b)
    }

    /// Iterator over the nonfaulty nodes.
    pub fn healthy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cube.nodes().filter(move |&a| !self.nodes.contains(a))
    }

    /// Number of nonfaulty nodes.
    pub fn healthy_count(&self) -> u64 {
        self.cube.num_nodes() - self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q4() -> Hypercube {
        Hypercube::new(4)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = FaultSet::new(q4());
        let a = NodeId::new(0b0110);
        assert!(!f.contains(a));
        assert!(f.insert(a));
        assert!(!f.insert(a), "double insert is a no-op");
        assert!(f.contains(a));
        assert_eq!(f.len(), 1);
        assert!(f.remove(a));
        assert!(!f.remove(a));
        assert!(f.is_empty());
    }

    #[test]
    fn fig1_fault_set() {
        // Fig. 1: faults {0011, 0100, 0110, 1001}.
        let f = FaultSet::from_binary_strs(q4(), &["0011", "0100", "0110", "1001"]);
        assert_eq!(f.len(), 4);
        assert!(f.contains(NodeId::new(0b0011)));
        assert!(!f.contains(NodeId::new(0b0000)));
        let listed: Vec<u64> = f.iter().map(NodeId::raw).collect();
        assert_eq!(listed, vec![0b0011, 0b0100, 0b0110, 0b1001]);
    }

    #[test]
    fn faulty_neighbor_count_matches_fig1() {
        // In Fig. 1, node 0010 has faulty neighbors 0011, 0110 → count 2.
        let f = FaultSet::from_binary_strs(q4(), &["0011", "0100", "0110", "1001"]);
        assert_eq!(f.faulty_neighbor_count(q4(), NodeId::new(0b0010)), 2);
        assert_eq!(f.faulty_neighbor_count(q4(), NodeId::new(0b1111)), 0);
    }

    #[test]
    fn link_faults_are_undirected() {
        let mut lf = LinkFaultSet::new();
        let a = NodeId::new(0b1000);
        let b = NodeId::new(0b1001);
        assert!(lf.insert(b, a));
        assert!(lf.contains(a, b));
        assert!(lf.contains(b, a));
        assert!(lf.touches(q4(), a));
        assert!(lf.touches(q4(), b));
        assert!(!lf.touches(q4(), NodeId::new(0b0000)));
        assert_eq!(lf.faulty_ends_of(q4(), a).collect::<Vec<_>>(), vec![b]);
        assert!(lf.remove(a, b));
        assert!(lf.is_empty());
    }

    #[test]
    fn link_iteration_is_sorted_and_complete() {
        let mut lf = LinkFaultSet::new();
        // Insert in scrambled order; iteration must come out sorted by
        // (low endpoint, dimension).
        lf.insert(NodeId::new(0b1110), NodeId::new(0b1111));
        lf.insert(NodeId::new(0b0001), NodeId::new(0b0000));
        lf.insert(NodeId::new(0b0100), NodeId::new(0b0000));
        lf.insert(NodeId::new(0b0010), NodeId::new(0b0000));
        assert_eq!(lf.len(), 4);
        let listed: Vec<(u64, u64)> = lf.iter().map(|(a, b)| (a.raw(), b.raw())).collect();
        assert_eq!(
            listed,
            vec![(0, 1), (0, 0b10), (0, 0b100), (0b1110, 0b1111)]
        );
    }

    #[test]
    fn link_set_equality_ignores_backing_growth() {
        let a = NodeId::new(0b0000);
        let b = NodeId::new(0b0001);
        let hi = NodeId::new(0b1110);
        let mut grown = LinkFaultSet::new();
        grown.insert(a, b);
        grown.insert(hi, NodeId::new(0b1111));
        grown.remove(hi, NodeId::new(0b1111));
        let mut small = LinkFaultSet::new();
        small.insert(a, b);
        assert_eq!(grown, small, "trailing zero words must not matter");
        assert_eq!(small, grown);
        small.remove(a, b);
        assert_eq!(small, LinkFaultSet::new());
        assert_ne!(grown, small);
    }

    #[test]
    fn link_contains_rejects_non_links_quietly() {
        let mut lf = LinkFaultSet::new();
        lf.insert(NodeId::new(0b0000), NodeId::new(0b0001));
        // Queries about node pairs that are not links (H ≠ 1) are
        // simply absent, matching the old set-of-pairs semantics.
        assert!(!lf.contains(NodeId::new(0b0000), NodeId::new(0b0011)));
        assert!(!lf.contains(NodeId::new(0b0101), NodeId::new(0b0101)));
        // Out-of-range endpoints (beyond anything inserted) are absent.
        assert!(!lf.contains(NodeId::new(0b1000_0000), NodeId::new(0b1000_0001)));
    }

    #[test]
    #[should_panic]
    fn link_faults_reject_non_links() {
        let mut lf = LinkFaultSet::new();
        lf.insert(NodeId::new(0b0000), NodeId::new(0b0011));
    }

    #[test]
    fn config_link_usable_accounts_for_everything() {
        let cube = q4();
        let mut cfg = FaultConfig::fault_free(cube);
        let a = NodeId::new(0b0000);
        let b = NodeId::new(0b0001);
        assert!(cfg.link_usable(a, b));
        cfg.link_faults_mut().insert(a, b);
        assert!(!cfg.link_usable(a, b));
        cfg.link_faults_mut().remove(a, b);
        cfg.node_faults_mut().insert(b);
        assert!(!cfg.link_usable(a, b));
        assert_eq!(cfg.healthy_count(), 15);
        assert!(cfg.healthy_nodes().all(|x| x != b));
    }
}
