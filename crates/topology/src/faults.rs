//! Fault state of a hypercube: faulty nodes and faulty links.
//!
//! The paper's main development (§2–§3) assumes *fault-stop node faults*
//! only; §4.1 extends to faulty links. [`FaultSet`] is a dense bitset of
//! faulty node addresses; [`LinkFaultSet`] stores faulty undirected
//! links; [`FaultConfig`] combines both and is what algorithms consume.

use crate::addr::NodeId;
use crate::cube::Hypercube;

/// A set of faulty nodes of a hypercube, stored as a dense bitset over
/// the `2ⁿ` addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSet {
    bits: Vec<u64>,
    len: usize,
    capacity: u64,
}

impl FaultSet {
    /// Empty fault set for the given cube.
    pub fn new(cube: Hypercube) -> Self {
        Self::with_capacity(cube.num_nodes())
    }

    /// Empty fault set able to hold addresses `0..capacity`.
    pub fn with_capacity(capacity: u64) -> Self {
        let words = capacity.div_ceil(64) as usize;
        FaultSet {
            bits: vec![0; words],
            len: 0,
            capacity,
        }
    }

    /// Builds a fault set from an iterator of faulty addresses.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(cube: Hypercube, nodes: I) -> Self {
        let mut f = Self::new(cube);
        for a in nodes {
            f.insert(a);
        }
        f
    }

    /// Convenience constructor from binary-string addresses, as the
    /// paper's figures list them (e.g. `["0011", "0100"]`).
    ///
    /// # Panics
    /// Panics on an unparsable address — figure instances are static
    /// data, so a typo should fail loudly.
    pub fn from_binary_strs(cube: Hypercube, strs: &[&str]) -> Self {
        Self::from_nodes(
            cube,
            strs.iter().map(|s| {
                NodeId::from_binary(s).unwrap_or_else(|| panic!("bad binary address {s:?}"))
            }),
        )
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no node is faulty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether node `a` is faulty.
    #[inline]
    pub fn contains(&self, a: NodeId) -> bool {
        let i = a.raw();
        debug_assert!(i < self.capacity, "address {i} out of range");
        (self.bits[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Marks `a` faulty; returns `true` if it was previously nonfaulty.
    pub fn insert(&mut self, a: NodeId) -> bool {
        let i = a.raw();
        assert!(i < self.capacity, "address {i} out of range");
        let (w, b) = ((i / 64) as usize, i % 64);
        let fresh = (self.bits[w] >> b) & 1 == 0;
        if fresh {
            self.bits[w] |= 1 << b;
            self.len += 1;
        }
        fresh
    }

    /// Marks `a` nonfaulty again (fault recovery, §2.2); returns `true`
    /// if it was previously faulty.
    pub fn remove(&mut self, a: NodeId) -> bool {
        let i = a.raw();
        assert!(i < self.capacity, "address {i} out of range");
        let (w, b) = ((i / 64) as usize, i % 64);
        let present = (self.bits[w] >> b) & 1 == 1;
        if present {
            self.bits[w] &= !(1 << b);
            self.len -= 1;
        }
        present
    }

    /// Iterator over the faulty node addresses, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            crate::addr::BitDims(word).map(move |b| NodeId::new((w as u64) * 64 + b as u64))
        })
    }

    /// Number of faulty neighbors of `a` in `cube`.
    pub fn faulty_neighbor_count(&self, cube: Hypercube, a: NodeId) -> usize {
        cube.neighbors(a).filter(|&b| self.contains(b)).count()
    }
}

/// A set of faulty undirected links, keyed by `(min, max)` endpoints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkFaultSet {
    links: std::collections::HashSet<(NodeId, NodeId)>,
}

impl LinkFaultSet {
    /// Empty link-fault set.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Marks the link between `a` and `b` faulty.
    ///
    /// # Panics
    /// Panics if `a` and `b` are not adjacent (`H(a,b) ≠ 1`).
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_eq!(a.distance(b), 1, "({a}, {b}) is not a hypercube link");
        self.links.insert(Self::key(a, b))
    }

    /// Restores the link between `a` and `b`.
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> bool {
        self.links.remove(&Self::key(a, b))
    }

    /// Whether the link between `a` and `b` is faulty.
    #[inline]
    pub fn contains(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains(&Self::key(a, b))
    }

    /// Number of faulty links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no link is faulty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterator over faulty links as `(low, high)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.links.iter().copied()
    }

    /// Whether node `a` has at least one adjacent faulty link — i.e.
    /// whether `a` belongs to the paper's set `N2` (§4.1).
    pub fn touches(&self, cube: Hypercube, a: NodeId) -> bool {
        cube.neighbors(a).any(|b| self.contains(a, b))
    }

    /// Iterator over the far endpoints of `a`'s adjacent faulty links.
    pub fn faulty_ends_of<'a>(
        &'a self,
        cube: Hypercube,
        a: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        cube.neighbors(a).filter(move |&b| self.contains(a, b))
    }
}

/// Complete fault state of one faulty hypercube instance: the cube, its
/// faulty nodes, and its faulty links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    cube: Hypercube,
    nodes: FaultSet,
    links: LinkFaultSet,
}

impl FaultConfig {
    /// A fault-free instance of `cube`.
    pub fn fault_free(cube: Hypercube) -> Self {
        FaultConfig {
            cube,
            nodes: FaultSet::new(cube),
            links: LinkFaultSet::new(),
        }
    }

    /// An instance with the given faulty nodes and no faulty links.
    pub fn with_node_faults(cube: Hypercube, nodes: FaultSet) -> Self {
        FaultConfig {
            cube,
            nodes,
            links: LinkFaultSet::new(),
        }
    }

    /// An instance with both faulty nodes and faulty links (§4.1).
    pub fn with_faults(cube: Hypercube, nodes: FaultSet, links: LinkFaultSet) -> Self {
        FaultConfig { cube, nodes, links }
    }

    /// The underlying topology.
    #[inline]
    pub fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The faulty-node set.
    #[inline]
    pub fn node_faults(&self) -> &FaultSet {
        &self.nodes
    }

    /// Mutable access to the faulty-node set (fault injection/recovery).
    #[inline]
    pub fn node_faults_mut(&mut self) -> &mut FaultSet {
        &mut self.nodes
    }

    /// The faulty-link set.
    #[inline]
    pub fn link_faults(&self) -> &LinkFaultSet {
        &self.links
    }

    /// Mutable access to the faulty-link set.
    #[inline]
    pub fn link_faults_mut(&mut self) -> &mut LinkFaultSet {
        &mut self.links
    }

    /// Whether node `a` is faulty.
    #[inline]
    pub fn node_faulty(&self, a: NodeId) -> bool {
        self.nodes.contains(a)
    }

    /// Whether the link `a`–`b` is usable: both endpoints nonfaulty and
    /// the link itself nonfaulty.
    #[inline]
    pub fn link_usable(&self, a: NodeId, b: NodeId) -> bool {
        !self.nodes.contains(a) && !self.nodes.contains(b) && !self.links.contains(a, b)
    }

    /// Iterator over the nonfaulty nodes.
    pub fn healthy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cube.nodes().filter(move |&a| !self.nodes.contains(a))
    }

    /// Number of nonfaulty nodes.
    pub fn healthy_count(&self) -> u64 {
        self.cube.num_nodes() - self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q4() -> Hypercube {
        Hypercube::new(4)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = FaultSet::new(q4());
        let a = NodeId::new(0b0110);
        assert!(!f.contains(a));
        assert!(f.insert(a));
        assert!(!f.insert(a), "double insert is a no-op");
        assert!(f.contains(a));
        assert_eq!(f.len(), 1);
        assert!(f.remove(a));
        assert!(!f.remove(a));
        assert!(f.is_empty());
    }

    #[test]
    fn fig1_fault_set() {
        // Fig. 1: faults {0011, 0100, 0110, 1001}.
        let f = FaultSet::from_binary_strs(q4(), &["0011", "0100", "0110", "1001"]);
        assert_eq!(f.len(), 4);
        assert!(f.contains(NodeId::new(0b0011)));
        assert!(!f.contains(NodeId::new(0b0000)));
        let listed: Vec<u64> = f.iter().map(NodeId::raw).collect();
        assert_eq!(listed, vec![0b0011, 0b0100, 0b0110, 0b1001]);
    }

    #[test]
    fn faulty_neighbor_count_matches_fig1() {
        // In Fig. 1, node 0010 has faulty neighbors 0011, 0110 → count 2.
        let f = FaultSet::from_binary_strs(q4(), &["0011", "0100", "0110", "1001"]);
        assert_eq!(f.faulty_neighbor_count(q4(), NodeId::new(0b0010)), 2);
        assert_eq!(f.faulty_neighbor_count(q4(), NodeId::new(0b1111)), 0);
    }

    #[test]
    fn link_faults_are_undirected() {
        let mut lf = LinkFaultSet::new();
        let a = NodeId::new(0b1000);
        let b = NodeId::new(0b1001);
        assert!(lf.insert(b, a));
        assert!(lf.contains(a, b));
        assert!(lf.contains(b, a));
        assert!(lf.touches(q4(), a));
        assert!(lf.touches(q4(), b));
        assert!(!lf.touches(q4(), NodeId::new(0b0000)));
        assert_eq!(lf.faulty_ends_of(q4(), a).collect::<Vec<_>>(), vec![b]);
        assert!(lf.remove(a, b));
        assert!(lf.is_empty());
    }

    #[test]
    #[should_panic]
    fn link_faults_reject_non_links() {
        let mut lf = LinkFaultSet::new();
        lf.insert(NodeId::new(0b0000), NodeId::new(0b0011));
    }

    #[test]
    fn config_link_usable_accounts_for_everything() {
        let cube = q4();
        let mut cfg = FaultConfig::fault_free(cube);
        let a = NodeId::new(0b0000);
        let b = NodeId::new(0b0001);
        assert!(cfg.link_usable(a, b));
        cfg.link_faults_mut().insert(a, b);
        assert!(!cfg.link_usable(a, b));
        cfg.link_faults_mut().remove(a, b);
        cfg.node_faults_mut().insert(b);
        assert!(!cfg.link_usable(a, b));
        assert_eq!(cfg.healthy_count(), 15);
        assert!(cfg.healthy_nodes().all(|x| x != b));
    }
}
