//! Node addressing and bitwise primitives for binary hypercubes.
//!
//! A node of the *n*-dimensional hypercube `Q_n` is identified by an
//! `n`-bit address `a_{n-1} a_{n-2} … a_0`. Two nodes are adjacent iff
//! their addresses differ in exactly one bit position; that position is
//! the *dimension* of the connecting link (paper, §2.1).

use std::fmt;

/// Maximum supported hypercube dimension.
///
/// All addresses fit a `u64`; full-cube enumeration (needed by the fault
/// bitsets and the experiment harness) keeps practical sizes below this.
pub const MAX_DIM: u8 = 30;

/// Address of a hypercube node: the `n` low bits of the wrapped `u64`.
///
/// `NodeId` is topology-agnostic — the dimension `n` lives in
/// [`crate::cube::Hypercube`]. Bits above position `n − 1` must be zero
/// for a node belonging to `Q_n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The all-zero address, the conventional "origin" corner.
    pub const ZERO: NodeId = NodeId(0);

    /// Builds a node from its raw integer address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw integer address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The `i`th address bit (the coordinate along dimension `i`).
    #[inline]
    pub const fn bit(self, i: u8) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// The neighbor along dimension `i`: flips the `i`th bit
    /// (`a ⊕ eⁱ` in the paper's notation).
    #[inline]
    pub const fn neighbor(self, i: u8) -> NodeId {
        NodeId(self.0 ^ (1 << i))
    }

    /// Bitwise exclusive OR of two addresses (`s ⊕ d`). The result has a
    /// one exactly at each *preferred dimension* of a route from `s` to
    /// `d`.
    #[inline]
    pub const fn xor(self, other: NodeId) -> NodeId {
        NodeId(self.0 ^ other.0)
    }

    /// Number of one bits — for a navigation vector `s ⊕ d` this is the
    /// Hamming distance `H(s, d)`.
    #[inline]
    pub const fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Hamming distance between two node addresses.
    #[inline]
    pub const fn distance(self, other: NodeId) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Iterator over the dimensions in which `self` and `other` differ,
    /// in increasing order — the *preferred dimensions* of the pair.
    #[inline]
    pub fn differing_dims(self, other: NodeId) -> BitDims {
        BitDims(self.0 ^ other.0)
    }

    /// Iterator over the set bit positions of this address.
    #[inline]
    pub fn set_dims(self) -> BitDims {
        BitDims(self.0)
    }

    /// Renders the address as an `n`-bit binary string, MSB first,
    /// matching the paper's figures (e.g. `0b1101` with `n = 4` → `"1101"`).
    pub fn to_binary(self, n: u8) -> String {
        (0..n)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Parses a binary address string (MSB first), the inverse of
    /// [`NodeId::to_binary`]. Returns `None` on any non-binary character
    /// or on overflow past [`MAX_DIM`] bits.
    pub fn from_binary(s: &str) -> Option<NodeId> {
        if s.is_empty() || s.len() > MAX_DIM as usize + 1 {
            return None;
        }
        let mut v: u64 = 0;
        for c in s.chars() {
            v = (v << 1)
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => return None,
                };
        }
        Some(NodeId(v))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:#b})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// The unit vector `eᵏ` of the paper: an address with only bit `k` set,
/// so `a ⊕ eᵏ` sets or resets the `k`th bit of `a`.
#[inline]
pub const fn e(k: u8) -> NodeId {
    NodeId(1 << k)
}

/// Iterator over the positions of set bits of a mask, ascending.
///
/// Yields each dimension index exactly once; the underlying mask is
/// consumed lowest-bit-first, so iteration is `O(popcount)`.
#[derive(Clone, Copy, Debug)]
pub struct BitDims(pub u64);

impl Iterator for BitDims {
    type Item = u8;

    #[inline]
    fn next(&mut self) -> Option<u8> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as u8;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.0.count_ones() as usize;
        (c, Some(c))
    }
}

impl ExactSizeIterator for BitDims {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_flips_exactly_one_bit() {
        let a = NodeId::new(0b1101);
        for i in 0..4 {
            let b = a.neighbor(i);
            assert_eq!(a.distance(b), 1);
            assert_eq!(a.xor(b), e(i));
            assert_eq!(b.neighbor(i), a, "flipping twice returns");
        }
    }

    #[test]
    fn paper_example_e2() {
        // Paper §2.1: 1101 ⊕ e² = 1001.
        let a = NodeId::from_binary("1101").unwrap();
        assert_eq!(a.xor(e(2)), NodeId::from_binary("1001").unwrap());
    }

    #[test]
    fn distance_is_popcount_of_xor() {
        let s = NodeId::new(0b1110);
        let d = NodeId::new(0b0001);
        assert_eq!(s.distance(d), 4);
        assert_eq!(s.xor(d).weight(), 4);
        assert_eq!(s.distance(s), 0);
    }

    #[test]
    fn differing_dims_enumerates_preferred_dimensions() {
        let s = NodeId::new(0b10110);
        let d = NodeId::new(0b00011);
        let dims: Vec<u8> = s.differing_dims(d).collect();
        assert_eq!(dims, vec![0, 2, 4]);
    }

    #[test]
    fn set_dims_on_zero_is_empty() {
        assert_eq!(NodeId::ZERO.set_dims().count(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        for raw in [0u64, 1, 0b1011, 0b111111, 0b1000000] {
            let n = 7;
            let id = NodeId::new(raw);
            let s = id.to_binary(n);
            assert_eq!(s.len(), n as usize);
            assert_eq!(NodeId::from_binary(&s), Some(id));
        }
    }

    #[test]
    fn from_binary_rejects_garbage() {
        assert_eq!(NodeId::from_binary(""), None);
        assert_eq!(NodeId::from_binary("10201"), None);
        assert_eq!(NodeId::from_binary("abc"), None);
    }

    #[test]
    fn bitdims_exact_size() {
        let it = BitDims(0b1011);
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn display_and_debug_render() {
        let a = NodeId::new(0b101);
        assert_eq!(format!("{a}"), "101");
        assert!(format!("{a:?}").contains("0b101"));
    }
}
