//! Node-disjoint parallel paths between hypercube node pairs.
//!
//! The proof of the paper's Theorem 2 leans on the classic hypercube
//! property that two nodes at Hamming distance `h` are joined by `h`
//! node-disjoint optimal paths (and, in `Q_n`, by `n` node-disjoint
//! paths total, the extra `n − h` having length `h + 2`). This module
//! constructs them explicitly; the property tests in `core` use the
//! construction as ground truth.

use crate::addr::{e, NodeId};
use crate::cube::Hypercube;
use crate::paths::Path;

/// The `h = H(s, d)` pairwise node-disjoint *optimal* paths between `s`
/// and `d`: path `i` crosses the preferred dimensions in cyclic order
/// starting from the `i`th one.
///
/// Returns an empty vector when `s == d`.
pub fn disjoint_optimal_paths(cube: Hypercube, s: NodeId, d: NodeId) -> Vec<Path> {
    debug_assert!(cube.contains(s) && cube.contains(d));
    let dims: Vec<u8> = cube.preferred_dims(s, d).collect();
    let h = dims.len();
    let mut paths = Vec::with_capacity(h);
    for start in 0..h {
        let mut nodes = Vec::with_capacity(h + 1);
        let mut cur = s;
        nodes.push(cur);
        for k in 0..h {
            cur = cur.neighbor(dims[(start + k) % h]);
            nodes.push(cur);
        }
        debug_assert_eq!(cur, d);
        paths.push(Path::from_nodes(nodes));
    }
    paths
}

/// All `n` pairwise node-disjoint paths between distinct `s` and `d`:
/// the `h` optimal paths of [`disjoint_optimal_paths`] plus one path of
/// length `h + 2` through each spare dimension `j` (flip `j`, cross all
/// preferred dimensions, flip `j` back).
///
/// Returns an empty vector when `s == d`, matching
/// [`disjoint_optimal_paths`] — a degenerate pair in a batched
/// many-to-many request yields no paths, not a panic.
pub fn disjoint_paths(cube: Hypercube, s: NodeId, d: NodeId) -> Vec<Path> {
    if s == d {
        return Vec::new();
    }
    let mut paths = disjoint_optimal_paths(cube, s, d);
    let dims: Vec<u8> = cube.preferred_dims(s, d).collect();
    for j in cube.spare_dims(s, d) {
        let mut nodes = Vec::with_capacity(dims.len() + 3);
        let mut cur = s.neighbor(j);
        nodes.push(s);
        nodes.push(cur);
        for &p in &dims {
            cur = cur.neighbor(p);
            nodes.push(cur);
        }
        debug_assert_eq!(cur, d.xor(e(j)));
        nodes.push(d);
        paths.push(Path::from_nodes(nodes));
    }
    paths
}

/// Checks that the given paths share no nodes other than their common
/// endpoints. Used by tests and by the Theorem 2 property checker.
pub fn pairwise_internally_disjoint(paths: &[Path]) -> bool {
    let mut inner: Vec<NodeId> = Vec::new();
    for p in paths {
        let nodes = p.nodes();
        if nodes.len() > 2 {
            inner.extend_from_slice(&nodes[1..nodes.len() - 1]);
        }
    }
    let before = inner.len();
    inner.sort();
    inner.dedup();
    inner.len() == before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_paths_count_and_shape() {
        let cube = Hypercube::new(6);
        let s = NodeId::new(0b101010);
        let d = NodeId::new(0b010110);
        let h = s.distance(d);
        let paths = disjoint_optimal_paths(cube, s, d);
        assert_eq!(paths.len() as u32, h);
        for p in &paths {
            assert_eq!(p.start(), s);
            assert_eq!(p.end(), d);
            assert!(p.is_optimal());
        }
        assert!(pairwise_internally_disjoint(&paths));
    }

    #[test]
    fn full_fan_is_n_paths() {
        let cube = Hypercube::new(5);
        let s = NodeId::new(0b00000);
        let d = NodeId::new(0b00011);
        let paths = disjoint_paths(cube, s, d);
        assert_eq!(paths.len(), 5);
        let optimal = paths.iter().filter(|p| p.is_optimal()).count();
        let subopt = paths.iter().filter(|p| p.is_suboptimal()).count();
        assert_eq!(optimal as u32, s.distance(d));
        assert_eq!(subopt as u32, 5 - s.distance(d));
        assert!(pairwise_internally_disjoint(&paths));
    }

    #[test]
    fn adjacent_pair_fan() {
        let cube = Hypercube::new(4);
        let s = NodeId::new(0b0000);
        let d = NodeId::new(0b1000);
        let paths = disjoint_paths(cube, s, d);
        assert_eq!(paths.len(), 4);
        assert!(pairwise_internally_disjoint(&paths));
    }

    #[test]
    fn exhaustive_small_cube() {
        let cube = Hypercube::new(4);
        for s in cube.nodes() {
            for d in cube.nodes() {
                if s == d {
                    continue;
                }
                let paths = disjoint_paths(cube, s, d);
                assert_eq!(paths.len(), 4);
                assert!(pairwise_internally_disjoint(&paths), "s={s} d={d}");
                for p in &paths {
                    assert!(!p.has_repeats());
                }
            }
        }
    }

    #[test]
    fn same_node_yields_no_optimal_paths() {
        let cube = Hypercube::new(3);
        assert!(disjoint_optimal_paths(cube, NodeId::ZERO, NodeId::ZERO).is_empty());
    }

    #[test]
    fn same_node_yields_no_full_fan_either() {
        // Regression: the full fan used to assert on s == d while the
        // optimal fan returned an empty vector — a degenerate pair in
        // a batched many-to-many request must not kill the caller.
        let cube = Hypercube::new(4);
        for s in cube.nodes() {
            assert!(disjoint_paths(cube, s, s).is_empty());
        }
    }

    #[test]
    fn disjointness_checker_catches_overlap() {
        let a = Path::from_nodes(vec![NodeId::new(0), NodeId::new(1), NodeId::new(0b11)]);
        let b = Path::from_nodes(vec![NodeId::new(0), NodeId::new(1), NodeId::new(0b101)]);
        assert!(!pairwise_internally_disjoint(&[a, b]));
    }
}
