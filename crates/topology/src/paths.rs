//! Path representation and validation.
//!
//! Routing algorithms in this workspace return a [`Path`]; the checks
//! here are the single source of truth for what "optimal" (Hamming
//! distance, paper §2.1) and "suboptimal" (Hamming distance plus two,
//! paper footnote 2) mean, and for verifying that a produced path is
//! actually traversable in a given faulty cube.

use crate::addr::NodeId;
use crate::faults::FaultConfig;
use std::fmt;

/// A walk through the hypercube: the visited node sequence, inclusive
/// of source and destination. A single node is a valid zero-length path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// A path starting (and so far ending) at `src`.
    pub fn starting_at(src: NodeId) -> Self {
        Path { nodes: vec![src] }
    }

    /// Builds a path from a node sequence.
    ///
    /// # Panics
    /// Panics on an empty sequence or any non-adjacent consecutive pair:
    /// those are construction bugs, not routing outcomes.
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path has at least its source");
        for w in nodes.windows(2) {
            assert_eq!(
                w[0].distance(w[1]),
                1,
                "non-adjacent hop {} → {}",
                w[0],
                w[1]
            );
        }
        Path { nodes }
    }

    /// Extends the path by one hop to `next`.
    ///
    /// # Panics
    /// Panics if `next` is not adjacent to the current endpoint.
    pub fn push(&mut self, next: NodeId) {
        assert_eq!(self.end().distance(next), 1, "non-adjacent hop");
        self.nodes.push(next);
    }

    /// The source node.
    #[inline]
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// The current endpoint.
    #[inline]
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// Number of hops (links traversed), i.e. `nodes − 1`.
    #[inline]
    pub fn len(&self) -> u32 {
        (self.nodes.len() - 1) as u32
    }

    /// Whether the path has zero hops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The visited node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether this is an *optimal path* for its endpoints: length equal
    /// to the Hamming distance (paper §2.1).
    pub fn is_optimal(&self) -> bool {
        self.len() == self.start().distance(self.end())
    }

    /// Whether this is a *suboptimal path* in the paper's sense:
    /// length exactly Hamming distance plus two (footnote 2).
    pub fn is_suboptimal(&self) -> bool {
        self.len() == self.start().distance(self.end()) + 2
    }

    /// Hops above the Hamming distance of the endpoints.
    pub fn detour(&self) -> u32 {
        self.len() - self.start().distance(self.end())
    }

    /// Whether every node and link of the path is usable in `cfg`,
    /// except that the final node may be faulty when `allow_faulty_dest`
    /// is set (paper footnote 3: a message must still be *delivered to*
    /// a destination that is the far end of a faulty link or faulty).
    pub fn traversable(&self, cfg: &FaultConfig, allow_faulty_dest: bool) -> bool {
        let last = self.nodes.len() - 1;
        for (i, &a) in self.nodes.iter().enumerate() {
            if cfg.node_faulty(a) && !(allow_faulty_dest && i == last) {
                return false;
            }
        }
        for w in self.nodes.windows(2) {
            if cfg.link_faults().contains(w[0], w[1]) {
                return false;
            }
        }
        true
    }

    /// Renders the path with `n`-bit zero-padded addresses, the way the
    /// paper's figures write walks (e.g. `1110 → 1111 → 1101`).
    pub fn render(&self, n: u8) -> String {
        self.nodes
            .iter()
            .map(|a| a.to_binary(n))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Whether the path ever revisits a node.
    pub fn has_repeats(&self) -> bool {
        let mut seen = self.nodes.clone();
        seen.sort();
        seen.windows(2).any(|w| w[0] == w[1])
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Hypercube;
    use crate::faults::FaultSet;

    fn n(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn fig1_first_unicast_path_is_optimal() {
        // Paper §3.2: 1110 → 1111 → 1101 → 0101 → 0001 (H = 4).
        let p = Path::from_nodes(vec![n(0b1110), n(0b1111), n(0b1101), n(0b0101), n(0b0001)]);
        assert_eq!(p.len(), 4);
        assert!(p.is_optimal());
        assert!(!p.is_suboptimal());
        assert_eq!(p.detour(), 0);
        assert!(!p.has_repeats());
    }

    #[test]
    fn fig4_route_is_suboptimal() {
        // Paper §4.1: 1101 → 1111 → 1011 → 1010 → 1000, H = 2, length 4.
        let p = Path::from_nodes(vec![n(0b1101), n(0b1111), n(0b1011), n(0b1010), n(0b1000)]);
        assert!(p.is_suboptimal());
        assert_eq!(p.detour(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_teleport() {
        Path::from_nodes(vec![n(0b0000), n(0b0011)]);
    }

    #[test]
    fn push_extends() {
        let mut p = Path::starting_at(n(0));
        p.push(n(1));
        p.push(n(0b11));
        assert_eq!(p.len(), 2);
        assert_eq!(p.end(), n(0b11));
        assert!(p.is_optimal());
    }

    #[test]
    fn traversable_respects_faults() {
        let cube = Hypercube::new(4);
        let p = Path::from_nodes(vec![n(0b0000), n(0b0001), n(0b0011)]);
        let ok = FaultConfig::fault_free(cube);
        assert!(p.traversable(&ok, false));
        let mid_faulty =
            FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["0001"]));
        assert!(
            !p.traversable(&mid_faulty, true),
            "faulty intermediate is fatal"
        );
        let dest_faulty =
            FaultConfig::with_node_faults(cube, FaultSet::from_binary_strs(cube, &["0011"]));
        assert!(
            p.traversable(&dest_faulty, true),
            "faulty destination allowed"
        );
        assert!(!p.traversable(&dest_faulty, false));
    }

    #[test]
    fn traversable_respects_link_faults() {
        let cube = Hypercube::new(4);
        let p = Path::from_nodes(vec![n(0b0000), n(0b0001)]);
        let mut cfg = FaultConfig::fault_free(cube);
        cfg.link_faults_mut().insert(n(0b0000), n(0b0001));
        assert!(!p.traversable(&cfg, true));
    }

    #[test]
    fn zero_length_path() {
        let p = Path::starting_at(n(5));
        assert!(p.is_empty());
        assert!(p.is_optimal());
        assert_eq!(p.start(), p.end());
    }

    #[test]
    fn repeats_detected() {
        let p = Path::from_nodes(vec![n(0), n(1), n(0)]);
        assert!(p.has_repeats());
    }

    #[test]
    fn display_renders_arrows() {
        let p = Path::from_nodes(vec![n(0b10), n(0b11)]);
        assert_eq!(format!("{p}"), "Path[10 → 11]");
    }
}
