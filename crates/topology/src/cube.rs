//! The binary hypercube topology `Q_n`.

use crate::addr::{BitDims, NodeId, MAX_DIM};

/// The `n`-dimensional binary hypercube `Q_n`: `2ⁿ` nodes, each adjacent
/// to the `n` nodes whose addresses differ from it in exactly one bit.
///
/// `Hypercube` is a pure topology descriptor — it carries no fault state
/// (see [`crate::faults`]) and is `Copy`-cheap to pass around.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hypercube {
    n: u8,
}

impl Hypercube {
    /// Creates `Q_n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > MAX_DIM`: a zero-dimensional cube has
    /// no links and none of the paper's machinery applies to it.
    pub fn new(n: u8) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&n),
            "dimension must be in 1..={MAX_DIM}, got {n}"
        );
        Hypercube { n }
    }

    /// The dimension `n`.
    #[inline]
    pub const fn dim(self) -> u8 {
        self.n
    }

    /// Number of nodes, `2ⁿ`.
    #[inline]
    pub const fn num_nodes(self) -> u64 {
        1 << self.n
    }

    /// Number of (undirected) links, `n · 2ⁿ⁻¹`.
    #[inline]
    pub const fn num_links(self) -> u64 {
        (self.n as u64) << (self.n - 1)
    }

    /// Whether `a` is a valid address of this cube.
    #[inline]
    pub const fn contains(self, a: NodeId) -> bool {
        a.raw() < self.num_nodes()
    }

    /// Iterator over all node addresses, ascending.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// Iterator over the `n` neighbors of `a`, by ascending dimension.
    pub fn neighbors(self, a: NodeId) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(move |i| a.neighbor(i))
    }

    /// Iterator over `(dimension, neighbor)` pairs of `a`.
    pub fn neighbors_with_dims(self, a: NodeId) -> impl Iterator<Item = (u8, NodeId)> {
        (0..self.n).map(move |i| (i, a.neighbor(i)))
    }

    /// Iterator over all undirected links as `(low, high)` node pairs,
    /// each link reported exactly once.
    pub fn links(self) -> impl Iterator<Item = (NodeId, NodeId)> {
        let n = self.n;
        self.nodes().flat_map(move |a| {
            (0..n).filter_map(move |i| {
                let b = a.neighbor(i);
                (a < b).then_some((a, b))
            })
        })
    }

    /// Hamming distance between two nodes of this cube.
    #[inline]
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        a.distance(b)
    }

    /// The *preferred dimensions* of the pair `(s, d)`: dimensions in
    /// which `s` and `d` differ. Any optimal (Hamming-distance) path
    /// from `s` to `d` crosses each of them exactly once (paper, §2.1).
    #[inline]
    pub fn preferred_dims(self, s: NodeId, d: NodeId) -> BitDims {
        s.differing_dims(d)
    }

    /// The *spare dimensions* of `(s, d)`: the remaining
    /// `n − H(s, d)` dimensions.
    #[inline]
    pub fn spare_dims(self, s: NodeId, d: NodeId) -> BitDims {
        BitDims(!s.xor(d).raw() & (self.num_nodes() - 1))
    }

    /// Preferred neighbors of `s` w.r.t. destination `d`
    /// (paper, §2.1): neighbors along preferred dimensions.
    pub fn preferred_neighbors(self, s: NodeId, d: NodeId) -> impl Iterator<Item = NodeId> {
        self.preferred_dims(s, d).map(move |i| s.neighbor(i))
    }

    /// Spare neighbors of `s` w.r.t. destination `d`.
    pub fn spare_neighbors(self, s: NodeId, d: NodeId) -> impl Iterator<Item = NodeId> {
        self.spare_dims(s, d).map(move |i| s.neighbor(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q4_counts() {
        let q = Hypercube::new(4);
        assert_eq!(q.num_nodes(), 16);
        assert_eq!(q.num_links(), 32);
        assert_eq!(q.nodes().count(), 16);
        assert_eq!(q.links().count(), 32);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        Hypercube::new(0);
    }

    #[test]
    fn neighbors_are_distance_one() {
        let q = Hypercube::new(5);
        let a = NodeId::new(0b10110);
        let ns: Vec<NodeId> = q.neighbors(a).collect();
        assert_eq!(ns.len(), 5);
        for b in &ns {
            assert_eq!(a.distance(*b), 1);
            assert!(q.contains(*b));
        }
        // All distinct.
        let mut sorted = ns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn preferred_and_spare_partition_dimensions() {
        let q = Hypercube::new(6);
        let s = NodeId::new(0b101010);
        let d = NodeId::new(0b011010);
        let mut dims: Vec<u8> = q.preferred_dims(s, d).chain(q.spare_dims(s, d)).collect();
        dims.sort();
        assert_eq!(dims, (0..6).collect::<Vec<u8>>());
        assert_eq!(q.preferred_dims(s, d).count() as u32, q.distance(s, d));
    }

    #[test]
    fn preferred_neighbors_move_closer() {
        let q = Hypercube::new(7);
        let s = NodeId::new(0b1010101);
        let d = NodeId::new(0b0110011);
        for p in q.preferred_neighbors(s, d) {
            assert_eq!(p.distance(d) + 1, s.distance(d));
        }
        for sp in q.spare_neighbors(s, d) {
            assert_eq!(sp.distance(d), s.distance(d) + 1);
        }
    }

    #[test]
    fn links_each_once_and_valid() {
        let q = Hypercube::new(3);
        for (a, b) in q.links() {
            assert!(a < b);
            assert_eq!(a.distance(b), 1);
        }
    }

    #[test]
    fn neighbors_with_dims_matches_neighbor_fn() {
        let q = Hypercube::new(4);
        let a = NodeId::new(0b0110);
        for (i, b) in q.neighbors_with_dims(a) {
            assert_eq!(b, a.neighbor(i));
        }
    }
}
