//! Generalized hypercubes `GH(m_{n-1}, …, m_0)` (Bhuyan & Agrawal),
//! the paper's §4.2 extension target.
//!
//! A node is an `n`-vector `(a_{n-1}, …, a_0)` with `0 ≤ a_i < m_i`;
//! two nodes are linked iff they differ in exactly one coordinate, so
//! all `m_i` nodes that agree everywhere except coordinate `i` form a
//! clique ("all the nodes along the same dimension are directly
//! connected"). Distance is the number of differing coordinates.

use crate::addr::NodeId;
use crate::faults::FaultSet;

/// Node of a generalized hypercube: a linear mixed-radix index. The
/// owning [`GeneralizedHypercube`] decodes it into digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GhNode(pub u64);

impl GhNode {
    /// The raw linear index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// The generalized hypercube topology `GH(m_{n-1}, …, m_0)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralizedHypercube {
    /// Radix per dimension, index 0 = least significant (paper's `m_0`).
    radices: Vec<u16>,
    /// Mixed-radix strides: `strides[i] = m_0 · … · m_{i-1}`.
    strides: Vec<u64>,
    num_nodes: u64,
}

impl GeneralizedHypercube {
    /// Builds `GH(m_{n-1}, …, m_0)` from radices listed least-significant
    /// first: `radices[i] = m_i`.
    ///
    /// # Panics
    /// Panics if empty, if any radix is < 2, or if the node count
    /// overflows practical limits (> 2³⁰ nodes).
    pub fn new(radices: &[u16]) -> Self {
        assert!(!radices.is_empty(), "need at least one dimension");
        let mut strides = Vec::with_capacity(radices.len());
        let mut total: u64 = 1;
        for &m in radices {
            assert!(m >= 2, "radix must be ≥ 2, got {m}");
            strides.push(total);
            total = total.checked_mul(m as u64).expect("node count overflow");
            assert!(total <= 1 << 30, "node count too large");
        }
        GeneralizedHypercube {
            radices: radices.to_vec(),
            strides,
            num_nodes: total,
        }
    }

    /// Convenience constructor matching the paper's `m_{n-1} × … × m_0`
    /// product notation: `from_product(&[2, 3, 2])` is the Fig. 5 cube
    /// `GH(2, 3, 2)` with `m_2 = 2, m_1 = 3, m_0 = 2`.
    pub fn from_product(radices_msb_first: &[u16]) -> Self {
        let lsb: Vec<u16> = radices_msb_first.iter().rev().copied().collect();
        Self::new(&lsb)
    }

    /// Number of dimensions `n`.
    #[inline]
    pub fn dim(&self) -> u8 {
        self.radices.len() as u8
    }

    /// Radix `m_i` of dimension `i`.
    #[inline]
    pub fn radix(&self, i: u8) -> u16 {
        self.radices[i as usize]
    }

    /// Total number of nodes `∏ m_i`.
    #[inline]
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Whether `a` is a valid node index.
    #[inline]
    pub fn contains(&self, a: GhNode) -> bool {
        a.0 < self.num_nodes
    }

    /// Iterator over all nodes, ascending by index.
    pub fn nodes(&self) -> impl Iterator<Item = GhNode> {
        (0..self.num_nodes).map(GhNode)
    }

    /// Coordinate `a_i` of node `a`.
    #[inline]
    pub fn digit(&self, a: GhNode, i: u8) -> u16 {
        ((a.0 / self.strides[i as usize]) % self.radices[i as usize] as u64) as u16
    }

    /// The node equal to `a` everywhere except coordinate `i`, which is
    /// set to `v`.
    ///
    /// # Panics
    /// Panics if `v ≥ m_i`.
    pub fn with_digit(&self, a: GhNode, i: u8, v: u16) -> GhNode {
        let m = self.radices[i as usize] as u64;
        assert!((v as u64) < m, "digit {v} out of range for radix {m}");
        let stride = self.strides[i as usize];
        let old = (a.0 / stride) % m;
        GhNode(a.0 - old * stride + v as u64 * stride)
    }

    /// Builds a node from its digit vector, least-significant first.
    pub fn node_from_digits(&self, digits: &[u16]) -> GhNode {
        assert_eq!(digits.len(), self.radices.len());
        let mut v = 0u64;
        for (i, &d) in digits.iter().enumerate() {
            assert!(d < self.radices[i], "digit out of range");
            v += d as u64 * self.strides[i];
        }
        GhNode(v)
    }

    /// Digit vector of `a`, least-significant first.
    pub fn digits(&self, a: GhNode) -> Vec<u16> {
        (0..self.dim()).map(|i| self.digit(a, i)).collect()
    }

    /// Parses a node written MSB-first with one character per digit
    /// (radices ≤ 10), the way the paper's Fig. 5 labels nodes
    /// (e.g. `"010"` in `GH(2,3,2)` = `(a_2, a_1, a_0) = (0, 1, 0)`).
    pub fn parse(&self, s: &str) -> Option<GhNode> {
        if s.len() != self.radices.len() {
            return None;
        }
        let mut digits = Vec::with_capacity(s.len());
        for (c, &m) in s.chars().rev().zip(self.radices.iter()) {
            let d = c.to_digit(10)? as u16;
            if d >= m {
                return None;
            }
            digits.push(d);
        }
        Some(self.node_from_digits(&digits))
    }

    /// Renders a node MSB-first with one character per digit.
    pub fn format(&self, a: GhNode) -> String {
        (0..self.dim())
            .rev()
            .map(|i| char::from_digit(self.digit(a, i) as u32, 10).expect("radix ≤ 10"))
            .collect()
    }

    /// Number of differing coordinates — the GH distance.
    pub fn distance(&self, a: GhNode, b: GhNode) -> u32 {
        (0..self.dim())
            .filter(|&i| self.digit(a, i) != self.digit(b, i))
            .count() as u32
    }

    /// Dimensions in which `a` and `b` differ (the preferred dimensions
    /// of the pair).
    pub fn differing_dims(&self, a: GhNode, b: GhNode) -> Vec<u8> {
        (0..self.dim())
            .filter(|&i| self.digit(a, i) != self.digit(b, i))
            .collect()
    }

    /// The `m_i − 1` neighbors of `a` along dimension `i` (the rest of
    /// its dimension-`i` clique).
    pub fn neighbors_along<'a>(&'a self, a: GhNode, i: u8) -> impl Iterator<Item = GhNode> + 'a {
        let cur = self.digit(a, i);
        (0..self.radix(i))
            .filter(move |&v| v != cur)
            .map(move |v| self.with_digit(a, i, v))
    }

    /// All neighbors of `a`: `Σ (m_i − 1)` nodes.
    pub fn neighbors<'a>(&'a self, a: GhNode) -> impl Iterator<Item = GhNode> + 'a {
        (0..self.dim()).flat_map(move |i| self.neighbors_along(a, i))
    }

    /// Node degree `Σ (m_i − 1)`.
    pub fn degree(&self) -> u32 {
        self.radices.iter().map(|&m| m as u32 - 1).sum()
    }

    /// An empty fault set sized for this topology. GH nodes share the
    /// dense-bitset [`FaultSet`] with binary cubes via their linear
    /// index.
    pub fn fault_set(&self) -> FaultSet {
        FaultSet::with_capacity(self.num_nodes)
    }

    /// Builds a fault set from MSB-first digit strings, as Fig. 5 lists.
    pub fn fault_set_from_strs(&self, strs: &[&str]) -> FaultSet {
        let mut f = self.fault_set();
        for s in strs {
            let node = self
                .parse(s)
                .unwrap_or_else(|| panic!("bad GH address {s:?}"));
            f.insert(NodeId::new(node.0));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gh232() -> GeneralizedHypercube {
        // Fig. 5: a 2 × 3 × 2 generalized hypercube.
        GeneralizedHypercube::from_product(&[2, 3, 2])
    }

    #[test]
    fn counts() {
        let gh = gh232();
        assert_eq!(gh.num_nodes(), 12);
        assert_eq!(gh.dim(), 3);
        assert_eq!(gh.radix(0), 2);
        assert_eq!(gh.radix(1), 3);
        assert_eq!(gh.radix(2), 2);
        assert_eq!(gh.degree(), 1 + 2 + 1);
    }

    #[test]
    fn parse_format_roundtrip() {
        let gh = gh232();
        for a in gh.nodes() {
            let s = gh.format(a);
            assert_eq!(gh.parse(&s), Some(a));
        }
        assert_eq!(gh.parse("020").map(|a| gh.digits(a)), Some(vec![0, 2, 0]));
        assert_eq!(gh.parse("030"), None, "digit ≥ radix rejected");
        assert_eq!(gh.parse("01"), None, "wrong length rejected");
    }

    #[test]
    fn neighbors_differ_in_one_coordinate() {
        let gh = gh232();
        let a = gh.parse("010").unwrap();
        let ns: Vec<GhNode> = gh.neighbors(a).collect();
        assert_eq!(ns.len() as u32, gh.degree());
        for b in &ns {
            assert_eq!(gh.distance(a, *b), 1);
        }
        // Fig. 5 walk: 010's neighbors along dimension 1 are 000 and 020.
        let along1: Vec<String> = gh.neighbors_along(a, 1).map(|b| gh.format(b)).collect();
        assert_eq!(along1, vec!["000", "020"]);
        // Neighbor along dimension 0 is 011; along dimension 2 is 110.
        assert_eq!(
            gh.neighbors_along(a, 0)
                .map(|b| gh.format(b))
                .collect::<Vec<_>>(),
            vec!["011"]
        );
        assert_eq!(
            gh.neighbors_along(a, 2)
                .map(|b| gh.format(b))
                .collect::<Vec<_>>(),
            vec!["110"]
        );
    }

    #[test]
    fn fig5_pair_distance() {
        let gh = gh232();
        let s = gh.parse("010").unwrap();
        let d = gh.parse("101").unwrap();
        assert_eq!(gh.distance(s, d), 3, "differ in all three coordinates");
        assert_eq!(gh.differing_dims(s, d), vec![0, 1, 2]);
    }

    #[test]
    fn with_digit_is_inverse_consistent() {
        let gh = GeneralizedHypercube::new(&[4, 3, 5]);
        for a in gh.nodes() {
            for i in 0..gh.dim() {
                for v in 0..gh.radix(i) {
                    let b = gh.with_digit(a, i, v);
                    assert_eq!(gh.digit(b, i), v);
                    for j in 0..gh.dim() {
                        if j != i {
                            assert_eq!(gh.digit(b, j), gh.digit(a, j));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn binary_radices_match_hypercube() {
        // GH(2,2,2,2) is Q_4: same distances, same degree.
        let gh = GeneralizedHypercube::new(&[2, 2, 2, 2]);
        assert_eq!(gh.num_nodes(), 16);
        assert_eq!(gh.degree(), 4);
        for a in gh.nodes() {
            for b in gh.nodes() {
                let qa = NodeId::new(a.0);
                let qb = NodeId::new(b.0);
                assert_eq!(gh.distance(a, b), qa.distance(qb));
            }
        }
    }

    #[test]
    fn fault_set_from_strs_works() {
        let gh = gh232();
        let f = gh.fault_set_from_strs(&["011", "110"]);
        assert_eq!(f.len(), 2);
        assert!(f.contains(NodeId::new(gh.parse("011").unwrap().0)));
    }

    #[test]
    #[should_panic]
    fn radix_one_rejected() {
        GeneralizedHypercube::new(&[2, 1]);
    }
}
