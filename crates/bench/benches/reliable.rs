//! Bench target for the reliability layer (E22): what the ACK/
//! retransmit machinery costs on the hot path. Distributed GS over a
//! raw channel versus the reliable layer on a clean channel (pure
//! protocol overhead) versus the reliable layer under 5% and 20% loss
//! (retransmission cost), plus the channel fate draw in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{run_gs_async, run_gs_reliable};
use hypersafe_simkit::{ChannelModel, ReliableConfig};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn bench_gs_transport(c: &mut Criterion) {
    let cube = Hypercube::new(7);
    let mut rng = Sweep::new(1, 0x5E11).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 6, &mut rng));

    let mut g = c.benchmark_group("gs_transport");
    g.bench_function("raw_channel", |b| {
        b.iter(|| black_box(run_gs_async(&cfg, 1).1.delivered))
    });
    for loss in [0.0, 0.05, 0.2] {
        g.bench_with_input(
            BenchmarkId::new("reliable", format!("loss_{loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let run = run_gs_reliable(
                        &cfg,
                        ChannelModel::lossy(0xC4A1, loss),
                        ReliableConfig::default(),
                        1,
                        u64::MAX,
                    );
                    black_box(run.stats.delivered)
                })
            },
        );
    }
    g.finish();
}

fn bench_channel_fate(c: &mut Criterion) {
    // The per-message cost the channel adds to every enqueue.
    let mut ch = ChannelModel::lossy(0xFA7E, 0.05)
        .with_jitter(3)
        .with_duplication(0.01);
    c.bench_function("channel_fate_draw", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(ch.fate(i, i ^ 1))
        })
    });
}

criterion_group!(benches, bench_gs_transport, bench_channel_fate);
criterion_main!(benches);
