//! Bench target for E9: per-unicast cost of every routing algorithm on
//! identical faulty-cube instances (the latency side of the
//! delivery-rate comparison in `repro compare`).

use criterion::{criterion_group, criterion_main, Criterion};
use hypersafe_baselines::{
    cw_route, dfs_route, fd_route, lh_route, progressive_route, sidetrack_route, LeeHayesStatus,
    WuFernandezStatus,
};
use hypersafe_core::{route, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let n = 9u8;
    let m = 8usize;
    let cube = Hypercube::new(n);
    let mut rng = Sweep::new(1, 0xACE).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, &mut rng));
    let map = SafetyMap::compute(&cfg);
    let lh = LeeHayesStatus::compute(&cfg);
    let wf = WuFernandezStatus::compute(&cfg);
    let pairs: Vec<(NodeId, NodeId)> = (0..256).map(|_| random_pair(&cfg, &mut rng)).collect();
    let ttl = 4 * n as u32;

    let mut g = c.benchmark_group(format!("routing_algos_n{n}_m{m}"));
    let mut idx = 0usize;
    let mut next = move |pairs: &[(NodeId, NodeId)]| {
        let p = pairs[idx % pairs.len()];
        idx += 1;
        p
    };
    g.bench_function("safety_level", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(route(&cfg, &map, s, d).delivered)
        })
    });
    g.bench_function("lee_hayes", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(lh_route(&cfg, &lh, s, d).is_some())
        })
    });
    g.bench_function("chiu_wu", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(cw_route(&cfg, &wf, s, d).is_some())
        })
    });
    g.bench_function("chen_shin_dfs", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(dfs_route(&cfg, s, d).map(|r| r.delivered))
        })
    });
    g.bench_function("progressive", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(progressive_route(&cfg, s, d, ttl).map(|r| r.1))
        })
    });
    g.bench_function("sidetrack", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(sidetrack_route(&cfg, s, d, ttl, &mut rng).map(|r| r.1))
        })
    });
    g.bench_function("free_dimensions", |b| {
        b.iter(|| {
            let (s, d) = next(&pairs);
            black_box(fd_route(&cfg, s, d, ttl).map(|r| r.1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
