//! Bench target for E24: the incremental safety-level engine vs a
//! from-scratch recompute (single-fault update at n = 12 — the ≥5×
//! acceptance bar) and the batched routing path, parallel vs
//! sequential on a million pairs (the ≥2× bar at 4 threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{route_many, route_many_seq, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};
use rand::Rng;
use std::hint::black_box;

/// A faulted cube plus a rotation of healthy victims so repeated
/// iterations fault a fresh node each time (apply_fault requires a
/// genuine healthy→faulty transition).
struct Fixture {
    cfg: FaultConfig,
    map: SafetyMap,
    victims: Vec<NodeId>,
}

fn fixture(n: u8, m: usize) -> Fixture {
    let cube = Hypercube::new(n);
    let mut rng = Sweep::new(1, 0xC8A1).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, &mut rng));
    let map = SafetyMap::compute(&cfg);
    let victims = (0..64)
        .map(|_| loop {
            let v = NodeId::new(rng.gen_range(0..cube.num_nodes()));
            if !cfg.node_faulty(v) {
                break v;
            }
        })
        .collect();
    Fixture { cfg, map, victims }
}

fn bench_single_fault_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn_single_fault");
    for (n, m) in [(10u8, 9usize), (12, 11), (14, 13)] {
        let fx = fixture(n, m);
        g.bench_with_input(BenchmarkId::new("incremental", n), &fx, |b, fx| {
            let mut i = 0usize;
            b.iter(|| {
                let v = fx.victims[i % fx.victims.len()];
                i += 1;
                let mut cfg = fx.cfg.clone();
                cfg.node_faults_mut().insert(v);
                let mut map = fx.map.clone();
                black_box(map.apply_fault(&cfg, v))
            })
        });
        g.bench_with_input(BenchmarkId::new("scratch", n), &fx, |b, fx| {
            let mut i = 0usize;
            b.iter(|| {
                let v = fx.victims[i % fx.victims.len()];
                i += 1;
                let mut cfg = fx.cfg.clone();
                cfg.node_faults_mut().insert(v);
                black_box(SafetyMap::compute(&cfg))
            })
        });
    }
    g.finish();
}

fn bench_route_many(c: &mut Criterion) {
    let n = 12u8;
    let fx = fixture(n, 11);
    let mut rng = Sweep::new(1, 0xBA7C).trial_rng(0);
    let pairs: Vec<(NodeId, NodeId)> = (0..1_000_000)
        .map(|_| random_pair(&fx.cfg, &mut rng))
        .collect();
    let mut g = c.benchmark_group("churn_route_many_1m");
    g.sample_size(10);
    g.bench_function(format!("par_t{}", rayon::num_threads()), |b| {
        b.iter(|| black_box(route_many(&fx.cfg, &fx.map, &pairs).len()))
    });
    g.bench_function("seq", |b| {
        b.iter(|| black_box(route_many_seq(&fx.cfg, &fx.map, &pairs).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_single_fault_update, bench_route_many);
criterion_main!(benches);
