//! Bench target for E10/E11: maintenance-cycle cost — one full GS
//! refresh after a fault event, under different cube sizes (the unit
//! of work every §2.2 strategy pays per refresh).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{replay, run_gs_async, Strategy, Timeline, TimelineEvent};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn bench_async_gs(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_gs_refresh");
    g.sample_size(20);
    for n in [6u8, 8] {
        let cube = Hypercube::new(n);
        let cfgs: Vec<FaultConfig> = Sweep::new(4, 0x1DEA).run_seq(|_, rng| {
            FaultConfig::with_node_faults(cube, uniform_faults(cube, n as usize - 1, rng))
        });
        g.bench_with_input(BenchmarkId::new("n", n), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs_async(cfg, 1).1.delivered)
            })
        });
    }
    g.finish();
}

fn bench_strategy_replay(c: &mut Criterion) {
    // A fixed timeline replayed under each strategy.
    let cube = Hypercube::new(6);
    let mut t = Timeline::new();
    let mut rng = Sweep::new(1, 0xD0_0D).trial_rng(0);
    let faults = uniform_faults(cube, 5, &mut rng);
    let list: Vec<NodeId> = faults.iter().collect();
    let mut clock = 0;
    for (i, &f) in list.iter().enumerate() {
        clock += 10;
        t.push(clock, TimelineEvent::Fault(f));
        clock += 10;
        t.push(
            clock,
            TimelineEvent::Unicast(
                NodeId::new((i as u64 * 7 + 1) % 64),
                NodeId::new(63 - i as u64),
            ),
        );
    }
    let mut g = c.benchmark_group("maintenance_replay");
    g.sample_size(30);
    for (name, strat) in [
        ("demand", Strategy::DemandDriven),
        ("periodic", Strategy::Periodic { period: 15 }),
        ("state_change", Strategy::StateChangeDriven),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(replay(cube, &t, strat).gs_messages))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_async_gs, bench_strategy_replay);
criterion_main!(benches);
