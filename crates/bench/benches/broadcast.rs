//! Bench target for E12: safety-level broadcast cost across cube sizes
//! and fault densities, plus the GS + broadcast pipeline end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{broadcast, run_gs, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    for n in [7u8, 10] {
        let cube = Hypercube::new(n);
        let mut rng = Sweep::new(1, 0xB0).trial_rng(0);
        let cfg =
            FaultConfig::with_node_faults(cube, uniform_faults(cube, n as usize - 1, &mut rng));
        let map = SafetyMap::compute(&cfg);
        let src = cfg
            .healthy_nodes()
            .find(|&a| map.is_safe(a))
            .unwrap_or(NodeId::ZERO);
        g.bench_with_input(
            BenchmarkId::new("safe_source", n),
            &(cfg, map, src),
            |b, (cfg, map, src)| b.iter(|| black_box(broadcast(cfg, map, *src).coverage())),
        );
    }
    g.finish();
}

fn bench_gs_plus_broadcast(c: &mut Criterion) {
    // The full "node failed → restabilize → redistribute" pipeline.
    let cube = Hypercube::new(8);
    let mut rng = Sweep::new(1, 0xB1).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 7, &mut rng));
    c.bench_function("gs_then_broadcast_n8", |b| {
        b.iter(|| {
            let run = run_gs(&cfg);
            let src = cfg
                .healthy_nodes()
                .find(|&a| run.map.is_safe(a))
                .unwrap_or(NodeId::ZERO);
            black_box(broadcast(&cfg, &run.map, src).coverage())
        })
    });
}

criterion_group!(benches, bench_broadcast, bench_gs_plus_broadcast);
criterion_main!(benches);
