//! Bench target for E3/E11: status computation across the three
//! definitions — safety levels (Definition 1) vs Lee–Hayes (Definition
//! 2) vs Wu–Fernandez (Definition 3) — on identical instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe_core::SafetyMap;
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn bench_definitions(c: &mut Criterion) {
    let n = 9u8;
    let cube = Hypercube::new(n);
    for m in [4usize, 16, 64] {
        let cfgs: Vec<FaultConfig> = Sweep::new(6, 0x5EED)
            .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)));
        let mut g = c.benchmark_group(format!("status_n{n}_m{m}"));
        g.bench_with_input(BenchmarkId::new("safety_levels", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(SafetyMap::compute(cfg))
            })
        });
        g.bench_with_input(BenchmarkId::new("constructive", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(SafetyMap::compute_constructive(cfg))
            })
        });
        g.bench_with_input(BenchmarkId::new("lee_hayes", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(LeeHayesStatus::compute(cfg))
            })
        });
        g.bench_with_input(BenchmarkId::new("wu_fernandez", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(WuFernandezStatus::compute(cfg))
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_definitions);
criterion_main!(benches);
