//! Bench target for E1/E4/E5: the unicasting hot path — source
//! decision, full centralized route, and the distributed protocol run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::unicast_distributed::run_unicast;
use hypersafe_core::{route, source_decision, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{random_pair, uniform_faults, Sweep};
use std::hint::black_box;

struct Fixture {
    cfg: FaultConfig,
    map: SafetyMap,
    pairs: Vec<(NodeId, NodeId)>,
}

fn fixture(n: u8, m: usize) -> Fixture {
    let cube = Hypercube::new(n);
    let mut rng = Sweep::new(1, 0xF1D0).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, &mut rng));
    let map = SafetyMap::compute(&cfg);
    let pairs = (0..256).map(|_| random_pair(&cfg, &mut rng)).collect();
    Fixture { cfg, map, pairs }
}

fn bench_source_decision(c: &mut Criterion) {
    let fx = fixture(10, 9);
    c.bench_function("source_decision_n10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = fx.pairs[i % fx.pairs.len()];
            i += 1;
            black_box(source_decision(&fx.map, s, d))
        })
    });
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_centralized");
    for (n, m) in [(7u8, 6usize), (10, 9), (10, 40)] {
        let fx = fixture(n, m);
        g.bench_with_input(BenchmarkId::new(format!("n{n}"), m), &fx, |b, fx| {
            let mut i = 0usize;
            b.iter(|| {
                let (s, d) = fx.pairs[i % fx.pairs.len()];
                i += 1;
                black_box(route(&fx.cfg, &fx.map, s, d).delivered)
            })
        });
    }
    g.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let fx = fixture(7, 6);
    let mut g = c.benchmark_group("route_distributed");
    g.sample_size(20);
    g.bench_function("n7_event_engine", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, d) = fx.pairs[i % fx.pairs.len()];
            i += 1;
            black_box(run_unicast(&fx.cfg, &fx.map, s, d, 1).messages)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_source_decision,
    bench_route,
    bench_distributed
);
criterion_main!(benches);
