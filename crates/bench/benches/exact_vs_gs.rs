//! Bench target for E16: the cost gap between the paper's n−1-round
//! approximation and perfect information — GS (`Θ(n · 2ⁿ)` per round,
//! ≤ n−1 rounds) versus the exact oracle (`Θ(n · 4ⁿ)`). This gap *is*
//! the paper's raison d'être, in nanoseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{ExactReach, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn bench_gap(c: &mut Criterion) {
    let mut g = c.benchmark_group("approximation_vs_oracle");
    g.sample_size(10);
    for n in [6u8, 8] {
        let cube = Hypercube::new(n);
        let mut rng = Sweep::new(1, 0xE0).trial_rng(0);
        let cfg =
            FaultConfig::with_node_faults(cube, uniform_faults(cube, n as usize - 1, &mut rng));
        g.bench_with_input(BenchmarkId::new("gs_levels", n), &cfg, |b, cfg| {
            b.iter(|| black_box(SafetyMap::compute(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("exact_oracle", n), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(ExactReach::compute(cfg).radius(cfg, hypersafe_topology::NodeId::ZERO))
            })
        });
    }
    g.finish();
}

fn bench_plane_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_kernels");
    g.sample_size(10);
    for n in [12u8, 14] {
        let cube = Hypercube::new(n);
        let mut rng = Sweep::new(1, 0xE1).trial_rng(0);
        let cfg =
            FaultConfig::with_node_faults(cube, uniform_faults(cube, 2 * n as usize, &mut rng));
        g.bench_with_input(BenchmarkId::new("plane_jacobi", n), &cfg, |b, cfg| {
            b.iter(|| black_box(SafetyMap::compute(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("plane_constructive", n), &cfg, |b, cfg| {
            b.iter(|| black_box(SafetyMap::compute_constructive(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("scalar_reference", n), &cfg, |b, cfg| {
            b.iter(|| black_box(SafetyMap::compute_reference(cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gap, bench_plane_kernels);
criterion_main!(benches);
