//! Bench target for E8: generalized-hypercube safety computation and
//! routing across radix shapes (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::gh_safety::GhSafetyMap;
use hypersafe_core::gh_unicast::gh_route;
use hypersafe_topology::{GeneralizedHypercube, GhNode, NodeId};
use hypersafe_workloads::Sweep;
use rand::Rng;
use std::hint::black_box;

fn shapes() -> Vec<(&'static str, GeneralizedHypercube)> {
    vec![
        ("2x3x2", GeneralizedHypercube::from_product(&[2, 3, 2])),
        ("4x4x4", GeneralizedHypercube::from_product(&[4, 4, 4])),
        ("8x8x8", GeneralizedHypercube::from_product(&[8, 8, 8])),
        ("binary_q9", GeneralizedHypercube::new(&[2; 9])),
    ]
}

fn bench_gh_safety(c: &mut Criterion) {
    let mut g = c.benchmark_group("gh_safety_compute");
    for (name, gh) in shapes() {
        let mut rng = Sweep::new(1, 0x6E0).trial_rng(0);
        let mut faults = gh.fault_set();
        let m = (gh.num_nodes() / 16).max(2);
        while (faults.len() as u64) < m {
            faults.insert(NodeId::new(rng.gen_range(0..gh.num_nodes())));
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(gh, faults),
            |b, (gh, f)| b.iter(|| black_box(GhSafetyMap::compute(gh, f))),
        );
    }
    g.finish();
}

fn bench_gh_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("gh_route");
    for (name, gh) in shapes() {
        let mut rng = Sweep::new(1, 0x6E1).trial_rng(0);
        let mut faults = gh.fault_set();
        let m = (gh.num_nodes() / 16).max(2);
        while (faults.len() as u64) < m {
            faults.insert(NodeId::new(rng.gen_range(0..gh.num_nodes())));
        }
        let map = GhSafetyMap::compute(&gh, &faults);
        let pairs: Vec<(GhNode, GhNode)> = (0..128)
            .map(|_| loop {
                let s = GhNode(rng.gen_range(0..gh.num_nodes()));
                let d = GhNode(rng.gen_range(0..gh.num_nodes()));
                if s != d
                    && !faults.contains(NodeId::new(s.raw()))
                    && !faults.contains(NodeId::new(d.raw()))
                {
                    break (s, d);
                }
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(gh, faults, map, pairs),
            |b, (gh, f, map, pairs)| {
                let mut i = 0usize;
                b.iter(|| {
                    let (s, d) = pairs[i % pairs.len()];
                    i += 1;
                    black_box(gh_route(gh, map, f, s, d).delivered)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_gh_safety, bench_gh_route);
criterion_main!(benches);
