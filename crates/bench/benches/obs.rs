//! Bench target for the observability layer (E25): what the metrics
//! hooks cost. The headline pair is the same reliable-GS run with the
//! registry absent vs installed — the absent side is the configuration
//! every existing experiment runs in, and the acceptance bar is that
//! it stays within noise of the pre-hook engine (`gs_rounds` tracks
//! the absolute engine numbers; `results/obs_overhead.md` records the
//! comparison). The smaller groups isolate the per-event primitives:
//! histogram recording, the flight-recorder ring, and snapshot
//! serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{run_gs_reliable, run_gs_reliable_observed};
use hypersafe_simkit::{FlightRecorder, Metrics, ReliableConfig, Severity, TraceEvent, TraceSink};
use hypersafe_topology::{FaultConfig, Hypercube, NodeId};
use hypersafe_workloads::{uniform_faults, Sweep, STANDARD_PROFILES};
use std::hint::black_box;

fn instances(n: u8, m: usize, count: u32) -> Vec<FaultConfig> {
    let cube = Hypercube::new(n);
    Sweep::new(count, 0xB5BE)
        .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)))
}

/// The headline comparison: identical reliable-GS executions (same
/// instances, same channel seeds — the hooks never perturb the event
/// stream) with metrics off and on.
fn bench_observed_vs_not(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_engine");
    g.sample_size(20);
    let prof = STANDARD_PROFILES
        .iter()
        .find(|p| p.name == "moderate")
        .expect("standard profile");
    let rcfg = ReliableConfig::default();
    for n in [6u8, 8] {
        let cfgs = instances(n, n as usize - 2, 4);
        g.bench_with_input(BenchmarkId::new("unobserved", n), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs_reliable(
                    cfg,
                    prof.channel(i as u64),
                    rcfg,
                    1,
                    2_000_000,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("observed", n), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs_reliable_observed(
                    cfg,
                    prof.channel(i as u64),
                    rcfg,
                    1,
                    2_000_000,
                ))
            })
        });
    }
    g.finish();
}

/// The per-observation primitives the hooks bottom out in.
fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.bench_function("hist_record", |b| {
        let mut m = Metrics::new(1, 1);
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            m.record_hops(black_box(v >> 48));
        });
        black_box(m);
    });
    g.bench_function("flight_recorder_push", |b| {
        // A full ring, so every push pays the eviction too (the
        // steady state of a long run).
        let mut fr = FlightRecorder::new(256).with_min_severity(Severity::Debug);
        let ev = TraceEvent::Hop {
            from: NodeId::new(3),
            to: NodeId::new(7),
            dim: Some(2),
            word: 0b101,
        };
        b.iter(|| fr.record(black_box(ev.clone())));
        black_box(fr.seen());
    });
    g.bench_function("flight_recorder_filtered_out", |b| {
        // The rejection path: hop-severity events against a Warn bar
        // never touch the ring.
        let mut fr = FlightRecorder::new(256).with_min_severity(Severity::Warn);
        let ev = TraceEvent::Hop {
            from: NodeId::new(3),
            to: NodeId::new(7),
            dim: Some(2),
            word: 0b101,
        };
        b.iter(|| fr.record(black_box(ev.clone())));
        black_box(fr.seen());
    });
    g.finish();
}

/// Snapshot + serialization of a populated registry (the export path
/// `repro obs` and the per-experiment `*_obs.json` writers share).
fn bench_export(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_export");
    let prof = STANDARD_PROFILES
        .iter()
        .find(|p| p.name == "moderate")
        .expect("standard profile");
    let cfgs = instances(8, 6, 1);
    let (_, m) = run_gs_reliable_observed(
        &cfgs[0],
        prof.channel(1),
        ReliableConfig::default(),
        1,
        2_000_000,
    );
    g.bench_function("snapshot", |b| b.iter(|| black_box(m.snapshot())));
    let snap = m.snapshot();
    g.bench_function("to_json", |b| b.iter(|| black_box(snap.to_json())));
    g.bench_function("to_csv", |b| b.iter(|| black_box(snap.to_csv())));
    g.finish();
}

criterion_group!(
    benches,
    bench_observed_vs_not,
    bench_primitives,
    bench_export
);
criterion_main!(benches);
