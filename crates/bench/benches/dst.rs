//! Bench targets for the deterministic simulation-testing subsystem:
//! what the adversarial scheduler, the quiescent-point invariant
//! checks, and the ddmin shrinker cost on top of a plain engine run.
//! Run with `BENCH_JSON=results/BENCH_dst.json` to record the summary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{run_gs_async_checked, run_gs_async_sched};
use hypersafe_simkit::{shrink_injections, AdversarialScheduler, FifoScheduler, Scheduler};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn instances(n: u8, m: usize, count: u32) -> Vec<FaultConfig> {
    let cube = Hypercube::new(n);
    Sweep::new(count, 0xD57_BEAC)
        .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)))
}

/// FIFO vs adversarial scheduling of the same asynchronous GS run:
/// the cost of the order-key permutation and latency stretch.
fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dst_sched");
    let cfgs = instances(7, 6, 4);
    for kind in ["fifo", "adversarial"] {
        g.bench_with_input(BenchmarkId::new(kind, 7), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                let sched: Box<dyn Scheduler> = match kind {
                    "fifo" => Box::new(FifoScheduler),
                    _ => Box::new(AdversarialScheduler::permute(i as u64).with_stretch(3)),
                };
                black_box(run_gs_async_sched(cfg, 1, sched))
            })
        });
    }
    g.finish();
}

/// The same adversarial run with the invariant suite evaluated at
/// every quiescent point — the steady-state price of `repro dst`.
fn bench_invariant_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("dst_checked");
    for n in [5u8, 7] {
        let cfgs = instances(n, n as usize - 1, 4);
        g.bench_with_input(BenchmarkId::new("gs", n), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(
                    run_gs_async_checked(cfg, 1, Box::new(AdversarialScheduler::permute(i as u64)))
                        .expect("invariants hold"),
                )
            })
        });
    }
    g.finish();
}

/// ddmin itself, isolated from the engine: shrinking a 64-event list
/// whose failure needs one specific event (the common DST outcome).
fn bench_shrinker(c: &mut Criterion) {
    let mut g = c.benchmark_group("dst_shrink");
    let events: Vec<u32> = (0..64).collect();
    g.bench_with_input(BenchmarkId::new("ddmin", 64), &events, |b, events| {
        b.iter(|| black_box(shrink_injections(events, |s| s.contains(&23))))
    });
    g.finish();
}

criterion_group!(
    dst,
    bench_scheduler_overhead,
    bench_invariant_checks,
    bench_shrinker
);
criterion_main!(dst);
