//! Bench target for E2 (Fig. 2): cost of the GS safety-level
//! computation as cube size and fault density grow — both the
//! centralized fixed point and the message-accurate synchronous
//! protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{run_gs, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn instances(n: u8, m: usize, count: u32) -> Vec<FaultConfig> {
    let cube = Hypercube::new(n);
    Sweep::new(count, 0xBE_ACE)
        .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)))
}

/// Deterministic link-fault injection: `count` links spread over the
/// cube by a fixed stride, so before/after comparisons see identical
/// instances.
fn with_link_faults(mut cfg: FaultConfig, count: usize) -> FaultConfig {
    let cube = cfg.cube();
    let nodes = cube.num_nodes();
    let n = cube.dim() as u64;
    let mut inserted = 0usize;
    let mut k = 0u64;
    while inserted < count {
        let a = hypersafe_topology::NodeId::new((k.wrapping_mul(0x9E37_79B9)) % nodes);
        let b = a.neighbor((k % n) as u8);
        if cfg.link_faults_mut().insert(a, b) {
            inserted += 1;
        }
        k += 1;
    }
    cfg
}

fn bench_centralized(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_centralized");
    for n in [7u8, 10] {
        for m in [0usize, n as usize - 1, 4 * n as usize] {
            let cfgs = instances(n, m, 8);
            g.bench_with_input(BenchmarkId::new(format!("n{n}"), m), &cfgs, |b, cfgs| {
                let mut i = 0usize;
                b.iter(|| {
                    let cfg = &cfgs[i % cfgs.len()];
                    i += 1;
                    black_box(SafetyMap::compute(cfg))
                })
            });
        }
    }
    g.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_protocol");
    g.sample_size(20);
    for m in [0usize, 6, 28] {
        let cfgs = instances(7, m, 4);
        g.bench_with_input(BenchmarkId::new("n7", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs(cfg).map.rounds())
            })
        });
    }
    g.finish();
}

/// The `n = 14` scaling target: the synchronous protocol's inner loop
/// (one link-fault membership probe per node-dimension per round) and
/// the centralized fixed point, with and without link faults present.
fn bench_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_large");
    g.sample_size(10);
    let n = 14u8;
    for m in [0usize, 13, 56] {
        let cfgs = instances(n, m, 2);
        g.bench_with_input(BenchmarkId::new("protocol_n14", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs(cfg).map.rounds())
            })
        });
    }
    {
        let base = instances(n, 13, 1).pop().expect("one instance");
        let cfg = with_link_faults(base, 64);
        g.bench_with_input(
            BenchmarkId::new("protocol_n14_links", 64),
            &cfg,
            |b, cfg| b.iter(|| black_box(run_gs(cfg).map.rounds())),
        );
    }
    {
        let cfgs = instances(n, 13, 2);
        g.bench_with_input(BenchmarkId::new("centralized_n14", 13), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(SafetyMap::compute(cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_centralized, bench_protocol, bench_large);
criterion_main!(benches);
