//! Bench target for E2 (Fig. 2): cost of the GS safety-level
//! computation as cube size and fault density grow — both the
//! centralized fixed point and the message-accurate synchronous
//! protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypersafe_core::{run_gs, SafetyMap};
use hypersafe_topology::{FaultConfig, Hypercube};
use hypersafe_workloads::{uniform_faults, Sweep};
use std::hint::black_box;

fn instances(n: u8, m: usize, count: u32) -> Vec<FaultConfig> {
    let cube = Hypercube::new(n);
    Sweep::new(count, 0xBE_ACE)
        .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)))
}

fn bench_centralized(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_centralized");
    for n in [7u8, 10] {
        for m in [0usize, n as usize - 1, 4 * n as usize] {
            let cfgs = instances(n, m, 8);
            g.bench_with_input(BenchmarkId::new(format!("n{n}"), m), &cfgs, |b, cfgs| {
                let mut i = 0usize;
                b.iter(|| {
                    let cfg = &cfgs[i % cfgs.len()];
                    i += 1;
                    black_box(SafetyMap::compute(cfg))
                })
            });
        }
    }
    g.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("gs_protocol");
    g.sample_size(20);
    for m in [0usize, 6, 28] {
        let cfgs = instances(7, m, 4);
        g.bench_with_input(BenchmarkId::new("n7", m), &cfgs, |b, cfgs| {
            let mut i = 0usize;
            b.iter(|| {
                let cfg = &cfgs[i % cfgs.len()];
                i += 1;
                black_box(run_gs(cfg).map.rounds())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_centralized, bench_protocol);
criterion_main!(benches);
