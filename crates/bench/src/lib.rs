pub fn _placeholder() {}
