//! Offline minimal bench harness exposing the `criterion` 0.5 API
//! surface this workspace uses: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Instead of criterion's full statistical machinery it takes a short
//! calibrated measurement (warmup + timed batches, median of batch
//! means) and prints one line per benchmark. Good enough to compare
//! hot paths locally and to keep `cargo bench --no-run` green in CI;
//! not a replacement for criterion's confidence intervals.
//!
//! ## Machine-readable output
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! completed benchmark is additionally appended to a JSON summary at
//! that path (the file is rewritten after each result, so it is
//! complete even if the run is interrupted):
//!
//! ```sh
//! BENCH_JSON=$PWD/results/BENCH_gs_rounds.json cargo bench --bench gs_rounds
//! ```
//!
//! Prefer an absolute path: cargo runs bench binaries with the owning
//! package directory (not the workspace root) as the working directory.
//!
//! The format is one object with a `results` array of
//! `{"id": "<group>/<bench>/<param>", "ns_per_iter": <f64>}` entries,
//! in execution order.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Number of timed batches the budget is split into.
const BATCHES: usize = 10;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter, for groups whose name already identifies the
    /// function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    /// Median batch mean, filled in by [`Bencher::iter`].
    elapsed_per_iter: f64,
}

impl Bencher {
    /// Measures `f`: one warmup call, then [`BATCHES`] timed batches
    /// sized to fit the measurement budget; records the median of the
    /// batch means (robust to scheduler noise).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: how long does one call take?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = MEASURE_BUDGET / BATCHES as u32;
        let iters_per_batch = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut means = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            means.push(t.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.elapsed_per_iter = means[means.len() / 2];
    }
}

/// Results accumulated so far in this process, in execution order.
fn results() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Minimal JSON string escaping — bench ids are plain identifiers, but
/// stay correct for anything.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the accumulated results as the `BENCH_JSON` document.
fn render_json(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {ns:.1}}}{sep}\n",
            json_escape(id)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Rewrites the `BENCH_JSON` file (if requested) with everything
/// measured so far. Rewriting per result keeps the file complete even
/// when the bench binary is interrupted, with no exit hook needed.
fn flush_json() {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    let doc = render_json(&results().lock().expect("bench results lock"));
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("BENCH_JSON: cannot write {}: {e}", path.display());
    }
}

fn run_one(full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: 0.0,
    };
    f(&mut b);
    let ns = b.elapsed_per_iter;
    if ns >= 1e6 {
        println!("{full_id:<60} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{full_id:<60} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{full_id:<60} {:>12.1} ns/iter", ns);
    }
    results()
        .lock()
        .expect("bench results lock")
        .push((full_id.to_string(), ns));
    flush_json();
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the vendored harness sizes its
    /// sampling by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.elapsed_per_iter > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }

    #[test]
    fn json_document_is_well_formed() {
        let doc = render_json(&[
            ("gs/n7/0".to_string(), 1234.56),
            ("quote\"d".to_string(), 7.0),
        ]);
        assert!(doc.contains("\"id\": \"gs/n7/0\", \"ns_per_iter\": 1234.6"));
        assert!(doc.contains("quote\\\"d"));
        assert!(doc.trim_end().ends_with('}'));
        // First entry comma-separated, last not.
        assert_eq!(doc.matches("},\n").count(), 1);
    }
}
