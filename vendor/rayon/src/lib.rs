//! Offline stand-in for the slice of `rayon`'s API this workspace uses
//! (`into_par_iter().map(..).collect()`, `par_chunks_mut`, `join`),
//! executed on `std::thread::scope` worker threads.
//!
//! Unlike real rayon there is no persistent pool: each terminal
//! operation buffers its input, splits it into one contiguous chunk
//! per thread, runs the chunks on freshly scoped threads, and
//! concatenates the per-chunk results in chunk order — so `collect`
//! preserves input order and every reduction folds in a
//! schedule-independent order. The workspace only uses this for
//! deterministic data-parallel steps (Monte-Carlo sweeps, Jacobi
//! rounds, lock-step round halves), which is exactly the shape this
//! executor handles bitwise-reproducibly.
//!
//! Thread count: `RAYON_NUM_THREADS` if set and ≥ 1, else
//! [`std::thread::available_parallelism`]. With one thread (or one
//! item) everything runs inline with no spawns. The `Send`/`Sync`
//! bounds mirror the real API so the code keeps compiling against
//! genuine rayon if it ever returns.

/// Worker-thread count: `RAYON_NUM_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism (1 if that
/// is unknown). Resolved once per process — this sits on the
/// per-round hot path of the lock-step engine, where an environment
/// lookup per call is measurable on small cubes.
pub fn num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    })
}

/// Chunked fork/join core: applies `f` to every item on `threads`
/// scoped workers, returning outputs in input order.
fn execute_chunked<T, O, F>(items: Vec<T>, f: &F, threads: usize) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut out: Vec<O> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
    });
    out
}

/// Parallel iterator over a buffered source (identity stage).
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Pairs every item with its index, like [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Keeps items for which `f` is true. The predicate runs while the
    /// source is buffered (sequentially); downstream stages of the
    /// surviving items run in parallel.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Maps each item through `f` on the worker threads.
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I::Item) -> O + Sync,
        O: Send,
    {
        ParMap { iter: self.0, f }
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C
    where
        I::Item: Send,
    {
        self.map(|x| x).collect()
    }

    /// Runs `f` on every item, in input order.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sums the items (folded in input order).
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// A mapped parallel iterator; terminal operations fan the map out
/// across the worker threads.
pub struct ParMap<I, F> {
    iter: I,
    f: F,
}

impl<I, O, F> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    /// Composes a second map stage.
    pub fn map<O2, G>(self, g: G) -> ParMap<I, impl Fn(I::Item) -> O2 + Sync>
    where
        G: Fn(O) -> O2 + Sync,
        O2: Send,
    {
        let f = self.f;
        ParMap {
            iter: self.iter,
            f: move |x| g(f(x)),
        }
    }

    /// Runs the map on the workers, returning outputs in input order.
    fn run(self) -> Vec<O> {
        let items: Vec<I::Item> = self.iter.collect();
        execute_chunked(items, &self.f, num_threads())
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs `g` on every mapped item, in input order.
    pub fn for_each<G: FnMut(O)>(self, g: G) {
        self.run().into_iter().for_each(g)
    }

    /// Sums the mapped items. The partials are folded in input order,
    /// so floating-point reductions are bitwise-reproducible.
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Counts the mapped items.
    pub fn count(self) -> usize {
        self.run().len()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wraps `self` in the parallel adapter.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Reference-side conversions, mirroring `rayon`'s `par_iter`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.as_slice().iter())
    }
}

/// Shared chunked views of a slice, mirroring `rayon`'s `par_chunks`
/// — each chunk is handed to one worker; outputs come back in chunk
/// order, so `flatten`-style collection preserves input order.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable chunked views of a slice, mirroring `rayon`'s
/// `par_chunks_mut` — each chunk is handed to one worker.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Zipped chunk fan-out: splits `input` and `output` into aligned
/// contiguous chunks of `chunk_size` elements and runs
/// `f(in_chunk, out_chunk)` once per pair, each on its own scoped
/// worker. Unlike the `ParIter` adapters there is no buffering and no
/// per-item result collection: workers write straight into the
/// caller's output slice, so the only allocations are the caller's.
/// With one thread — or when everything fits in a single chunk — `f`
/// runs inline on the whole pair, making the `RAYON_NUM_THREADS=1`
/// path identical to a plain loop.
///
/// Panics if the slices differ in length.
pub fn for_each_chunk_pair<T, O, F>(input: &[T], output: &mut [O], chunk_size: usize, f: F)
where
    T: Sync,
    O: Send,
    F: Fn(&[T], &mut [O]) + Sync,
{
    assert_eq!(
        input.len(),
        output.len(),
        "for_each_chunk_pair: slice length mismatch"
    );
    let chunk_size = chunk_size.max(1);
    if num_threads() <= 1 || input.len() <= chunk_size {
        f(input, output);
        return;
    }
    let f = &f;
    std::thread::scope(|s| {
        for (ic, oc) in input.chunks(chunk_size).zip(output.chunks_mut(chunk_size)) {
            s.spawn(move || f(ic, oc));
        }
    });
}

/// Runs both closures (on two scoped threads when the machine has
/// them) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon join worker panicked"))
    })
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn chunked_execution_matches_sequential_at_any_width() {
        let items: Vec<u32> = (0..101).collect();
        let expect: Vec<u32> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 7, 16, 128] {
            let got = super::execute_chunked(items.clone(), &|x| x * x + 1, threads);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_execution_handles_degenerate_inputs() {
        let empty: Vec<u8> = super::execute_chunked(Vec::new(), &|x: u8| x, 4);
        assert!(empty.is_empty());
        let one = super::execute_chunked(vec![9u8], &|x| x + 1, 4);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = vec![1u32, 2, 3];
        let s: u32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn composed_maps_and_enumerate() {
        let v: Vec<usize> = (0usize..10)
            .into_par_iter()
            .enumerate()
            .map(|(i, x)| i + x)
            .map(|y| y * 3)
            .collect();
        assert_eq!(v, (0..10).map(|x| 2 * x * 3).collect::<Vec<usize>>());
    }

    #[test]
    fn par_chunks_mut_sees_every_element_once() {
        let mut xs: Vec<u64> = (0..100).collect();
        let counts: Vec<(usize, usize)> = xs
            .par_chunks_mut(7)
            .enumerate()
            .map(|(ci, chunk)| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
                (ci, chunk.len())
            })
            .collect();
        assert_eq!(xs, (1..=100).collect::<Vec<u64>>());
        assert_eq!(counts.len(), 15);
        assert_eq!(counts.iter().map(|&(_, l)| l).sum::<usize>(), 100);
        assert!(counts.iter().enumerate().all(|(i, &(ci, _))| i == ci));
    }

    #[test]
    fn par_chunks_preserves_order_and_coverage() {
        let xs: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = xs.par_chunks(9).map(|c| c.iter().sum()).collect();
        let expect: Vec<u64> = xs.chunks(9).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
        assert_eq!(sums.len(), 12);
        assert_eq!(sums.iter().sum::<u64>(), xs.iter().sum::<u64>());
    }

    #[test]
    fn chunk_pair_writes_every_slot_in_order() {
        let input: Vec<u32> = (0..103).collect();
        let mut output = vec![0u32; input.len()];
        super::for_each_chunk_pair(&input, &mut output, 9, |ins, outs| {
            for (o, &x) in outs.iter_mut().zip(ins) {
                *o = x * 3 + 1;
            }
        });
        assert_eq!(
            output,
            input.iter().map(|&x| x * 3 + 1).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn chunk_pair_handles_degenerate_inputs() {
        let empty: [u8; 0] = [];
        let mut out: Vec<u8> = Vec::new();
        super::for_each_chunk_pair(&empty, &mut out, 4, |_, _| {});
        let input = [7u8];
        let mut one = [0u8];
        super::for_each_chunk_pair(&input, &mut one, 0, |ins, outs| outs[0] = ins[0] + 1);
        assert_eq!(one, [8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chunk_pair_rejects_mismatched_lengths() {
        let mut out = [0u8; 2];
        super::for_each_chunk_pair(&[1u8], &mut out, 1, |_, _| {});
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::num_threads() >= 1);
    }
}
