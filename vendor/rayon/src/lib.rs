//! Offline stand-in for the slice of `rayon`'s parallel-iterator API
//! this workspace uses (`into_par_iter().map(..).collect()`), executed
//! sequentially.
//!
//! The workspace only ever uses rayon for embarrassingly parallel,
//! deterministic Monte-Carlo sweeps whose results are required to be
//! bitwise-independent of scheduling — so a sequential execution is
//! behaviorally indistinguishable, just slower on multicore. The
//! `Send`/`Sync` bounds of the real API are preserved so the code
//! keeps compiling against genuine rayon if it ever returns.

/// Parallel iterator adapter (sequential in this vendored build).
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item through `f`.
    pub fn map<O, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> O,
    {
        ParIter(self.0.map(f))
    }

    /// Keeps items for which `f` is true.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// Conversion into a (nominally) parallel iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wraps `self` in the parallel adapter.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Reference-side conversions, mirroring `rayon`'s `par_iter`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: 'a;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.as_slice().iter())
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = vec![1u32, 2, 3];
        let s: u32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
