//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no network access and no crates.io cache,
//! so the workspace vendors the small slice of the `rand` API it
//! actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Semantics match `rand` where it matters for this workspace:
//! `seed_from_u64` uses the same SplitMix64 expansion, `gen_range`
//! is uniform via 128-bit widening multiply, and `shuffle` is a
//! Fisher–Yates walk. Bit-exact output parity with upstream `rand`
//! is *not* a goal — all experiment artifacts in `results/` are
//! regenerated from this implementation.

pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// expansion upstream `rand` 0.8 uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce with a uniform distribution
/// over their whole domain (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable from a bounded span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, low + span)` where `span > 0`.
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u64) -> Self;
    /// The size of `[low, high)` as a `u64` (`None` if empty).
    fn span(low: Self, high: Self) -> Option<u64>;
    /// Widens to u64 arithmetic.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(rng: &mut R, low: Self, span: u64) -> Self {
                // Widening-multiply range reduction (Lemire): bias is at
                // most span / 2^64, negligible for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.offset(hi)
            }
            fn span(low: Self, high: Self) -> Option<u64> {
                if low >= high {
                    None
                } else {
                    Some((high as i128 - low as i128) as u64)
                }
            }
            fn offset(self, delta: u64) -> Self {
                (self as i128 + delta as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range; panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let span = T::span(self.start, self.end).expect("cannot sample empty range");
        T::sample_span(rng, self.start, span)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let span = T::span(lo, hi).unwrap_or(0).wrapping_add(1);
        if span == 0 {
            // Full-domain u64 range.
            return T::sample_span(rng, lo, u64::MAX);
        }
        T::sample_span(rng, lo, span)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` over its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`; panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(0..=3);
            assert!(w <= 3);
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Lcg(4);
        let _: u64 = rng.gen_range(5..5);
    }
}
