//! Sequence-related randomness: the [`SliceRandom`] extension trait.

use crate::RngCore;

/// Uniform index in `0..bound` via widening multiply (`bound > 0`).
fn index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
}

/// Random operations on slices (`shuffle`, `choose`), mirroring
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = Lcg(10);
        let v: Vec<u32> = vec![];
        assert_eq!(v.choose(&mut rng), None);
        let w = [7u32];
        assert_eq!(w.choose(&mut rng), Some(&7));
    }
}
