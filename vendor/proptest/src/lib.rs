//! Offline, API-compatible subset of `proptest` 1.x.
//!
//! Implements the slice of the proptest surface this workspace uses —
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, [`any`], integer-range strategies, tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], and
//! [`ProptestConfig::with_cases`] — over a deterministic ChaCha8
//! generator.
//!
//! Differences from real proptest, deliberate for an offline build:
//! no shrinking (a failing case reports its case index and message,
//! not a minimized input), no persistence files, and a fixed default
//! seed so CI failures reproduce locally (`PROPTEST_SEED` overrides).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::marker::PhantomData;

pub mod collection;

/// The RNG driving input generation.
pub type TestRng = ChaCha8Rng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case asked to be skipped (`prop_assume!` failed).
    Reject(String),
    /// The property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Total rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (retries; after too
    /// many attempts the case is rejected like a failed
    /// `prop_assume!`).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Full-domain strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Inclusive size bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` (see [`collection::vec`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` (see [`collection::btree_set`]).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates from a small element domain may make the exact
        // target unreachable; bail out after a bounded effort like
        // real proptest does.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 20 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

pub(crate) fn new_vec_strategy<S>(element: S, size: SizeRange) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub(crate) fn new_btree_set_strategy<S>(element: S, size: SizeRange) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size }
}

/// Executes strategies against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a deterministic seed (override with the
    /// `PROPTEST_SEED` environment variable to explore other inputs).
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1CEB00DA_u64);
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Runs the property until `cases` successes; panics on the first
    /// failure (no shrinking — the reported case index plus the fixed
    /// seed reproduce it).
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            let input = strategy.generate(&mut self.rng);
            match test(input) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!("proptest: too many global rejects ({rejects}) after {case} cases");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
    }
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Defines `#[test]` functions over generated inputs (the `#[test]`
/// attribute is written by the caller, like upstream proptest).
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |values| {
                let ($($pat,)+) = values;
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), lhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)*), lhs
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds (does not count toward
/// the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u8..=7, b in 0u64..256, c in 1u32..6) {
            prop_assert!((3..=7).contains(&a));
            prop_assert!(b < 256);
            prop_assert!((1..6).contains(&c));
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn btree_sets_respect_bounds(s in crate::collection::btree_set(0u64..64, 0..20)) {
            prop_assert!(s.len() < 20);
            for v in &s { prop_assert!(*v < 64); }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (0u64..1000).prop_map(|x| x * 2);
        let mut r1 = TestRunner::new(ProptestConfig::with_cases(8));
        let mut r2 = TestRunner::new(ProptestConfig::with_cases(8));
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        r1.run(&(s,), |(x,)| {
            v1.push(x);
            Ok(())
        });
        let s = (0u64..1000).prop_map(|x| x * 2);
        r2.run(&(s,), |(x,)| {
            v2.push(x);
            Ok(())
        });
        assert_eq!(v1, v2);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(&(0u32..10,), |(x,)| {
            if x < 100 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }
}
