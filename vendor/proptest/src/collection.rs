//! Collection strategies: `vec` and `btree_set`.

use crate::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

/// Strategy for vectors whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    crate::new_vec_strategy(element, size.into())
}

/// Strategy for `BTreeSet`s whose size falls in `size` (best-effort
/// when the element domain is too small) and whose elements come from
/// `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    crate::new_btree_set_strategy(element, size.into())
}
