//! # hypersafe
//!
//! A full reproduction of **Jie Wu, "Reliable Unicasting in Faulty
//! Hypercubes Using Safety Levels"** (ICPP 1995; IEEE TC 46(2), 1997):
//! safety levels, the `GLOBAL_STATUS` protocol, optimal/suboptimal
//! unicasting with local feasibility detection (including disconnected
//! hypercubes), the faulty-link and generalized-hypercube extensions,
//! every baseline the paper compares against, and an experiment
//! harness regenerating each figure and claim.
//!
//! This façade crate re-exports the workspace members; depend on the
//! individual crates for finer-grained builds.
//!
//! ```
//! use hypersafe::topology::{Hypercube, FaultSet, FaultConfig, NodeId};
//! use hypersafe::safety::{SafetyMap, route, Decision};
//!
//! let cube = Hypercube::new(4);
//! let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
//! let cfg = FaultConfig::with_node_faults(cube, faults);
//! let map = SafetyMap::compute(&cfg);
//! let res = route(&cfg, &map,
//!     NodeId::from_binary("1110").unwrap(),
//!     NodeId::from_binary("0001").unwrap());
//! assert!(matches!(res.decision, Decision::Optimal { .. }));
//! ```

/// Baseline routing schemes ([2], [3], [4], [5], [7], [8], [10]).
pub use hypersafe_baselines as baselines;
/// The paper's contribution: safety levels and unicasting.
pub use hypersafe_core as safety;
/// Figure/claim regeneration harness.
pub use hypersafe_experiments as experiments;
/// Simulation substrate: synchronous rounds and discrete events.
pub use hypersafe_simkit as simkit;
/// Topology substrate: `Q_n`, `GH_n`, faults, connectivity, paths.
pub use hypersafe_topology as topology;
/// Fault-injection workloads and Monte-Carlo sweeps.
pub use hypersafe_workloads as workloads;
