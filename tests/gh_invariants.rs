//! GH-topology coverage for the invariant suite on GH(3,3,3): the
//! distributed `GLOBAL_STATUS` run through the round-checked runner
//! (monotone descent, fixed-point corridor, round bound, exact
//! convergence), and Theorem-4 soundness of the GH source decision
//! against the BFS connectivity oracle — exhaustively over every
//! fault set of size ≤ 2 and every ordered (s, d) pair.

use hypersafe::safety::gh_safety::GhSafetyMap;
use hypersafe::safety::{check_gh_theorem4_soundness, gh_source_decision, run_gh_gs_checked};
use hypersafe::topology::{FaultSet, GeneralizedHypercube, NodeId};

fn gh333() -> GeneralizedHypercube {
    GeneralizedHypercube::new(&[3, 3, 3])
}

/// All fault sets of GH(3,3,3) with at most two faulty nodes.
fn fault_sets_up_to_two(gh: &GeneralizedHypercube) -> Vec<FaultSet> {
    let total = gh.num_nodes();
    let mut sets = vec![gh.fault_set()];
    for a in 0..total {
        let mut f = gh.fault_set();
        f.insert(NodeId::new(a));
        sets.push(f);
        for b in (a + 1)..total {
            let mut f = gh.fault_set();
            f.insert(NodeId::new(a));
            f.insert(NodeId::new(b));
            sets.push(f);
        }
    }
    sets
}

#[test]
fn gh333_checked_runner_descends_monotonically_and_converges() {
    let gh = gh333();
    for (k, f) in fault_sets_up_to_two(&gh).iter().enumerate() {
        let map = run_gh_gs_checked(&gh, f).unwrap_or_else(|v| panic!("fault set {k}: {v:?}"));
        let central = GhSafetyMap::compute(&gh, f);
        assert_eq!(map.as_slice(), central.as_slice(), "fault set {k}");
    }
}

#[test]
fn gh333_theorem4_soundness_is_exhaustive_under_two_faults() {
    let gh = gh333();
    let mut failures = 0u64;
    let mut accepts = 0u64;
    for (k, f) in fault_sets_up_to_two(&gh).iter().enumerate() {
        let map = GhSafetyMap::compute(&gh, f);
        for s in gh.nodes() {
            if f.contains(NodeId::new(s.raw())) {
                continue;
            }
            for d in gh.nodes() {
                if s == d || f.contains(NodeId::new(d.raw())) {
                    continue;
                }
                let decision = gh_source_decision(&gh, &map, s, d);
                check_gh_theorem4_soundness(&gh, f, s, d, decision)
                    .unwrap_or_else(|v| panic!("fault set {k} {s:?}→{d:?}: {v:?}"));
                match decision {
                    hypersafe::safety::GhDecision::Failure => failures += 1,
                    _ => accepts += 1,
                }
            }
        }
    }
    // Below n = 3 faults the decision procedure must accept every
    // healthy pair (the soundness check above would have caught a
    // spurious Failure, but make the aggregate explicit too).
    assert_eq!(failures, 0, "spurious Failure below the fault bound");
    assert!(accepts > 0);
}

#[test]
fn gh_surrounded_node_fails_soundly() {
    // GH(2,2) is a 4-cycle; faulting both neighbors of (0,0) isolates
    // it. Failure is then doubly legitimate: the pair is disconnected
    // and the fault count reaches n = 2.
    let gh = GeneralizedHypercube::new(&[2, 2]);
    let mut f = gh.fault_set();
    f.insert(NodeId::new(gh.node_from_digits(&[1, 0]).raw()));
    f.insert(NodeId::new(gh.node_from_digits(&[0, 1]).raw()));
    let map = GhSafetyMap::compute(&gh, &f);
    let s = gh.node_from_digits(&[0, 0]);
    let d = gh.node_from_digits(&[1, 1]);
    let decision = gh_source_decision(&gh, &map, s, d);
    assert_eq!(decision, hypersafe::safety::GhDecision::Failure);
    assert_eq!(check_gh_theorem4_soundness(&gh, &f, s, d, decision), Ok(()));
    // And the checked GS runner still converges on the isolated cube.
    run_gh_gs_checked(&gh, &f).expect("GS must still converge");
}
