//! Cross-validation between the centralized algorithm evaluations and
//! their message-passing executions on the simulator — evidence that
//! the fast Monte-Carlo paths measure the real protocol.

use hypersafe::safety::unicast_distributed::run_unicast;
use hypersafe::safety::{route, run_gs, run_gs_async, SafetyMap};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{random_pair, uniform_faults, Sweep};

#[test]
fn gs_three_ways_on_random_6_cubes() {
    let cube = Hypercube::new(6);
    let sweep = Sweep::new(40, 0xDEC0DE);
    let mismatches: u32 = sweep
        .run(|i, rng| {
            let m = (i % 16) as usize;
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let central = SafetyMap::compute(&cfg);
            let sync = run_gs(&cfg);
            let (async_map, _) = run_gs_async(&cfg, 1 + (i as u64 % 5));
            (central.store() != sync.map.store() || central.store() != async_map.store()) as u32
        })
        .iter()
        .sum();
    assert_eq!(mismatches, 0);
}

#[test]
fn distributed_unicast_matches_centralized_on_random_instances() {
    let cube = Hypercube::new(6);
    let sweep = Sweep::new(30, 0xFACADE);
    let mismatches: u32 = sweep
        .run(|i, rng| {
            let m = (i % 10) as usize;
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let mut bad = 0u32;
            for _ in 0..10 {
                let (s, d) = random_pair(&cfg, rng);
                let central = route(&cfg, &map, s, d);
                let dist = run_unicast(&cfg, &map, s, d, 1);
                match (central.delivered, &dist.trail) {
                    (true, Some(trail)) => {
                        if central.path.as_ref().unwrap().nodes() != trail.as_slice() {
                            bad += 1;
                        }
                    }
                    (false, None) => {}
                    _ => bad += 1,
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(mismatches, 0, "hop-for-hop agreement required");
}

#[test]
fn message_cost_scales_with_hops_only() {
    // The unicast protocol sends exactly one message per hop — no
    // flooding, no acknowledgements. Checked across random pairs.
    let cube = Hypercube::new(7);
    let sweep = Sweep::new(10, 0xBEEF);
    let violations: u32 = sweep
        .run(|_, rng| {
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 5, rng));
            let map = SafetyMap::compute(&cfg);
            let mut bad = 0u32;
            for _ in 0..10 {
                let (s, d) = random_pair(&cfg, rng);
                let run = run_unicast(&cfg, &map, s, d, 1);
                if let Some(trail) = &run.trail {
                    if run.messages != (trail.len() - 1) as u64 {
                        bad += 1;
                    }
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(violations, 0);
}
