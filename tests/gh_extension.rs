//! Generalized-hypercube stack, end to end through the public API:
//! distributed GS ≡ centralized, routing contracts, broadcast
//! coverage, binary-radix reduction — across radix shapes.

use hypersafe::safety::gh_broadcast::gh_broadcast;
use hypersafe::safety::gh_safety::{run_gh_gs, GhSafetyMap};
use hypersafe::safety::gh_unicast::{gh_route, GhDecision};
use hypersafe::topology::{GeneralizedHypercube, GhNode, NodeId};
use hypersafe::workloads::Sweep;
use rand::Rng;

fn random_faults(
    gh: &GeneralizedHypercube,
    m: usize,
    rng: &mut impl Rng,
) -> hypersafe::topology::FaultSet {
    let mut f = gh.fault_set();
    while f.len() < m {
        f.insert(NodeId::new(rng.gen_range(0..gh.num_nodes())));
    }
    f
}

#[test]
fn distributed_gs_matches_centralized_across_shapes() {
    let shapes: Vec<GeneralizedHypercube> = vec![
        GeneralizedHypercube::from_product(&[2, 3, 2]),
        GeneralizedHypercube::from_product(&[4, 4, 4]),
        GeneralizedHypercube::from_product(&[3, 2, 5]),
        GeneralizedHypercube::new(&[2; 7]),
    ];
    let sweep = Sweep::new(12, 0x64EE);
    for gh in &shapes {
        let mismatch: u32 = sweep
            .run_seq(|i, rng| {
                let m = (i as usize) % (gh.num_nodes() as usize / 4).max(2);
                let f = random_faults(gh, m, rng);
                let central = GhSafetyMap::compute(gh, &f);
                let (dist, _) = run_gh_gs(gh, &f);
                (central.as_slice() != dist.as_slice()) as u32
            })
            .iter()
            .sum();
        assert_eq!(mismatch, 0, "shape {:?}", gh);
    }
}

#[test]
fn routing_contracts_on_random_gh_instances() {
    let gh = GeneralizedHypercube::from_product(&[3, 3, 3]);
    let sweep = Sweep::new(15, 0x64EF);
    let violations: u32 = sweep
        .run(|i, rng| {
            let f = random_faults(&gh, (i % 6) as usize, rng);
            let map = GhSafetyMap::compute(&gh, &f);
            let healthy: Vec<GhNode> = gh
                .nodes()
                .filter(|a| !f.contains(NodeId::new(a.raw())))
                .collect();
            let mut bad = 0u32;
            for &s in healthy.iter().take(8) {
                for &d in healthy.iter().rev().take(8) {
                    let res = gh_route(&gh, &map, &f, s, d);
                    match res.decision {
                        GhDecision::Optimal
                            if (!res.delivered || res.hops() != Some(gh.distance(s, d))) =>
                        {
                            bad += 1;
                        }
                        GhDecision::Suboptimal
                            if (!res.delivered || res.hops() != Some(gh.distance(s, d) + 2)) =>
                        {
                            bad += 1;
                        }
                        _ => {}
                    }
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(violations, 0);
}

#[test]
fn gh_broadcast_safe_sources_cover_everything() {
    let gh = GeneralizedHypercube::from_product(&[2, 4, 3]);
    let sweep = Sweep::new(15, 0x64F0);
    let failures: u32 = sweep
        .run(|i, rng| {
            let f = random_faults(&gh, (i % 5) as usize, rng);
            let map = GhSafetyMap::compute(&gh, &f);
            let mut bad = 0u32;
            for a in gh.nodes() {
                if f.contains(NodeId::new(a.raw())) || !map.is_safe(a) {
                    continue;
                }
                if !gh_broadcast(&gh, &map, &f, a).complete(&gh, &f) {
                    bad += 1;
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(failures, 0);
}

#[test]
fn gh_rounds_never_exceed_dims_minus_one() {
    let gh = GeneralizedHypercube::from_product(&[3, 4, 2, 3]);
    let sweep = Sweep::new(20, 0x64F1);
    let worst: u32 = sweep
        .run(|i, rng| {
            let f = random_faults(&gh, (3 * i % 20) as usize, rng);
            GhSafetyMap::compute(&gh, &f).rounds()
        })
        .into_iter()
        .max()
        .unwrap();
    assert!(worst <= 3, "n − 1 bound for GH (§4.2): got {worst}");
}
