//! Property tests for the event engine's message-accounting
//! conservation law (see `EventStats`): every send attempt meets
//! exactly one fate, so at any quiescent point
//!
//! `delivered + dropped + lost == sends + duplicated`
//!
//! and control events stay out of the balance (`killed` never exceeds
//! the kills injected; quashed timers are not `dropped`). The law is
//! exercised three ways: a raw flood on faulty `Q_n` under channel
//! noise, an adversarial scheduler and mid-run kills; the same flood on
//! generalized hypercubes; and the full reliable GS + unicast protocol
//! stack over the standard loss profiles.

use hypersafe::safety::{run_gs_reliable, run_unicast_lossy, SafetyMap};
use hypersafe::simkit::{
    Actor, AdversarialScheduler, ChannelModel, Ctx, EventEngine, EventStats, GhNet, HypercubeNet,
    Network, ReliableConfig,
};
use hypersafe::topology::{FaultConfig, FaultSet, GeneralizedHypercube, Hypercube, NodeId};
use proptest::prelude::*;

fn assert_conserved(stats: &EventStats, kills_injected: u64) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        stats.delivered + stats.dropped + stats.lost,
        stats.sends + stats.duplicated,
        "conservation law violated: {:?}",
        stats
    );
    prop_assert!(
        stats.killed <= kills_injected,
        "{} nodes killed but only {} kills injected: {:?}",
        stats.killed,
        kills_injected,
        stats
    );
    Ok(())
}

/// Rebroadcast-once flood: enough traffic to exercise every link in
/// both directions without ever quiescing early.
struct Flood {
    neighbors: Vec<NodeId>,
    origin: bool,
    seen: bool,
}

impl Flood {
    fn new<N: Network>(net: &N, a: NodeId, origin: NodeId) -> Self {
        Flood {
            neighbors: (0..net.degree(a.raw()))
                .map(|p| NodeId::new(net.neighbor(a.raw(), p)))
                .collect(),
            origin: a == origin,
            seen: false,
        }
    }

    fn burst(&mut self, ctx: &mut Ctx<()>) {
        self.seen = true;
        for i in 0..self.neighbors.len() {
            ctx.send(self.neighbors[i], (), 1);
        }
    }
}

impl Actor for Flood {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<()>) {
        if self.origin {
            self.burst(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {
        if !self.seen {
            self.burst(ctx);
        }
    }
}

/// Floods `net` from its lowest live node under the given channel,
/// an adversarial (reorder + stretch) scheduler, and a kill plan;
/// returns the final stats and the number of kills injected.
fn flood_stats<N: Network>(
    net: &N,
    live: impl Fn(u64) -> bool,
    channel: ChannelModel,
    sched_seed: u64,
    kills: &[(u64, u64)],
) -> (EventStats, u64) {
    let origin = NodeId::new(
        (0..net.num_nodes())
            .find(|&a| live(a))
            .expect("at least one live node"),
    );
    let sched =
        Box::new(AdversarialScheduler::permute(sched_seed).with_stretch(1 + sched_seed % 5));
    let mut eng =
        EventEngine::with_parts(net, Some(channel), sched, |a| Flood::new(net, a, origin));
    for &(victim, delay) in kills {
        eng.inject_kill(NodeId::new(victim % net.num_nodes()), delay);
    }
    eng.run(500_000);
    (eng.stats().clone(), kills.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The raw engine on faulty `Q_n`: loss, duplication, jitter,
    /// reordering and mid-run kills all at once.
    #[test]
    fn flood_on_faulty_cubes_conserves(
        n in 3u8..=6,
        fault_picks in proptest::collection::btree_set(0u64..64, 0..6),
        (loss_pct, dup_pct, jitter) in (0u32..30, 0u32..20, 0u64..4),
        seed in any::<u64>(),
        kills in proptest::collection::vec((any::<u64>(), 0u64..20), 0..3),
    ) {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        // Keep node 0 alive as the flood origin.
        let faults = FaultSet::from_nodes(
            cube,
            fault_picks.iter().map(|&a| NodeId::new(1 + a % (total - 1))),
        );
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let net = HypercubeNet::new(&cfg);
        let channel = ChannelModel::new(seed)
            .with_loss(loss_pct as f64 / 100.0)
            .with_jitter(jitter)
            .with_duplication(dup_pct as f64 / 100.0);
        let (stats, injected) =
            flood_stats(&net, |a| !cfg.node_faulty(NodeId::new(a)), channel, seed, &kills);
        // Faults or kills can isolate the origin, so only the burst
        // itself is guaranteed.
        prop_assert!(stats.sends > 0, "origin never burst: {:?}", stats);
        assert_conserved(&stats, injected)?;
    }

    /// The same flood on generalized hypercubes (mixed radices, higher
    /// degree, same engine): the law is topology-independent.
    #[test]
    fn flood_on_generalized_hypercubes_conserves(
        radices in proptest::collection::vec(2u16..=4, 2..=3),
        fault_picks in proptest::collection::btree_set(0u64..64, 0..4),
        loss_pct in 0u32..30,
        dup_pct in 0u32..20,
        seed in any::<u64>(),
        kills in proptest::collection::vec((any::<u64>(), 0u64..20), 0..3),
    ) {
        let gh = GeneralizedHypercube::new(&radices);
        let total = gh.num_nodes();
        let mut faults = FaultSet::with_capacity(total);
        for &a in &fault_picks {
            faults.insert(NodeId::new(1 + a % (total - 1)));
        }
        let net = GhNet::new(&gh, &faults);
        let channel = ChannelModel::new(seed)
            .with_loss(loss_pct as f64 / 100.0)
            .with_duplication(dup_pct as f64 / 100.0);
        let (stats, injected) =
            flood_stats(&net, |a| !faults.contains(NodeId::new(a)), channel, seed, &kills);
        // Faults or kills can isolate the origin, so only the burst
        // itself is guaranteed.
        prop_assert!(stats.sends > 0, "origin never burst: {:?}", stats);
        assert_conserved(&stats, injected)?;
    }

    /// The full protocol stack: reliable GS convergence and a reliable
    /// unicast on the same faulty cube over a noisy channel. Timers and
    /// retransmissions churn underneath; the balance must still close,
    /// and no kills are injected so `killed` must be 0.
    #[test]
    fn reliable_protocols_conserve(
        n in 3u8..=5,
        fault_picks in proptest::collection::btree_set(0u64..32, 0..4),
        loss_pct in 0u32..20,
        dup_pct in 0u32..10,
        seed in any::<u64>(),
    ) {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let faults = FaultSet::from_nodes(
            cube,
            fault_picks.iter().map(|&a| NodeId::new(1 + a % (total - 1))),
        );
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let channel = || {
            ChannelModel::new(seed)
                .with_loss(loss_pct as f64 / 100.0)
                .with_jitter(2)
                .with_duplication(dup_pct as f64 / 100.0)
        };
        let rcfg = ReliableConfig::default();

        let gs = run_gs_reliable(&cfg, channel(), rcfg, 1, 2_000_000);
        prop_assert!(gs.quiescent, "GS ran out of event budget");
        assert_conserved(&gs.stats, 0)?;

        let map = SafetyMap::compute(&cfg);
        let s = NodeId::new(0);
        let d = NodeId::new(total - 1);
        if !cfg.node_faulty(d) {
            let uni = run_unicast_lossy(&cfg, &map, s, d, 1, channel(), rcfg, 2_000_000);
            assert_conserved(&uni.stats, 0)?;
        }
    }
}
