//! Cross-validation of the routing stack against the exact
//! optimal-reachability oracle: the approximation may only ever be
//! conservative, and whenever it promises optimality the oracle must
//! agree.

use hypersafe::safety::{route, source_decision, Decision, ExactReach, SafetyMap};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{uniform_faults, Sweep};

#[test]
fn optimal_decisions_are_oracle_sound() {
    // Whenever C1/C2 admits an optimal unicast, the oracle confirms an
    // optimal path exists AND the greedy route realizes one.
    let cube = Hypercube::new(6);
    let sweep = Sweep::new(40, 0x0AC1E);
    let violations: u32 = sweep
        .run(|i, rng| {
            let m = (i % 14) as usize;
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            let mut bad = 0u32;
            for s in cfg.healthy_nodes() {
                for d in cfg.healthy_nodes() {
                    if s == d {
                        continue;
                    }
                    match source_decision(&map, s, d) {
                        Decision::Optimal { .. } => {
                            if !ex.optimal_path_exists(s, d) {
                                bad += 1;
                            }
                            let r = route(&cfg, &map, s, d);
                            if !r.delivered || !r.path.unwrap().is_optimal() {
                                bad += 1;
                            }
                        }
                        Decision::Suboptimal { .. } => {
                            // H + 2 promise, oracle-independent; checked
                            // in theorem3 tests. Nothing to verify here.
                        }
                        _ => {}
                    }
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(violations, 0);
}

#[test]
fn safety_level_is_oracle_lower_bound_randomized() {
    let cube = Hypercube::new(7);
    let sweep = Sweep::new(20, 0x0AC1F);
    let violations: u64 = sweep
        .run(|i, rng| {
            let m = (2 * i % 20) as usize;
            let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng));
            let map = SafetyMap::compute(&cfg);
            let ex = ExactReach::compute(&cfg);
            hypersafe::safety::tightness(&cfg, &map, &ex).violations
        })
        .iter()
        .sum();
    assert_eq!(violations, 0, "S(a) ≤ r(a) must hold everywhere");
}

#[test]
fn reach_vector_monotone_under_fault_removal() {
    // Removing a fault can only improve exact reachability.
    let cube = Hypercube::new(5);
    let sweep = Sweep::new(20, 0x0AC20);
    let violations: u32 = sweep
        .run(|_, rng| {
            let faults = uniform_faults(cube, 6, rng);
            let cfg = FaultConfig::with_node_faults(cube, faults.clone());
            let ex = ExactReach::compute(&cfg);
            // Remove one fault.
            let victim = faults.iter().next().expect("6 faults");
            let mut fewer = faults.clone();
            fewer.remove(victim);
            let cfg2 = FaultConfig::with_node_faults(cube, fewer);
            let ex2 = ExactReach::compute(&cfg2);
            let mut bad = 0u32;
            for s in cfg.healthy_nodes() {
                for d in cube.nodes() {
                    if ex.optimal_path_exists(s, d) && !ex2.optimal_path_exists(s, d) {
                        bad += 1;
                    }
                }
            }
            bad
        })
        .iter()
        .sum();
    assert_eq!(violations, 0);
}
