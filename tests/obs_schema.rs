//! The exported observability snapshot (`obs_metrics.json`, also the
//! `loss_obs` / `dst_obs` / `churn_obs` variants — all the same shape)
//! is pinned by `tests/goldens/obs_schema.json`: CI validates the file
//! `repro obs --quick` writes against it, and this test validates
//! freshly generated snapshots the same way so a shape drift fails
//! locally before it fails in CI.

use hypersafe::safety::{run_gs_reliable_observed, run_unicast_lossy_observed, SafetyMap};
use hypersafe::simkit::{parse_json, validate_json, JsonValue, Metrics, ReliableConfig};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};
use hypersafe::workloads::STANDARD_PROFILES;

const SCHEMA: &str = include_str!("goldens/obs_schema.json");

/// A populated snapshot from a real protocol run (GS convergence plus
/// one unicast on a faulty cube over a duplicating, lossy channel, so
/// every counter family is exercised).
fn populated_snapshot() -> hypersafe::simkit::MetricsSnapshot {
    let cube = Hypercube::new(5);
    let faults = FaultSet::from_nodes(cube, [NodeId::new(3), NodeId::new(17)]);
    let cfg = FaultConfig::with_node_faults(cube, faults);
    let prof = STANDARD_PROFILES
        .iter()
        .find(|p| p.name == "moderate")
        .expect("standard profile");
    let rcfg = ReliableConfig::default();
    let (gs, mut obs) = run_gs_reliable_observed(&cfg, prof.channel(7), rcfg, 1, 2_000_000);
    assert!(gs.quiescent, "GS ran out of event budget");
    let map = SafetyMap::compute(&cfg);
    let (_, uobs) = run_unicast_lossy_observed(
        &cfg,
        &map,
        NodeId::new(0),
        NodeId::new(cube.num_nodes() - 1),
        1,
        prof.channel(11),
        rcfg,
        2_000_000,
    );
    obs.merge(&uobs);
    obs.snapshot()
}

#[test]
fn generated_snapshot_matches_the_checked_in_schema() {
    let snap = populated_snapshot();
    let json = snap.to_json();
    validate_json(&json, SCHEMA).expect("snapshot drifted from tests/goldens/obs_schema.json");
}

#[test]
fn empty_snapshot_matches_the_schema_too() {
    // The degenerate export (no runs merged) must stay valid — CI's
    // quick path may produce sparse per-node/per-dim arrays.
    let json = Metrics::new(0, 0).snapshot().to_json();
    validate_json(&json, SCHEMA).expect("empty snapshot drifted from the schema");
}

#[test]
fn schema_rejects_shape_drift() {
    let snap = populated_snapshot();
    let json = snap.to_json();
    // A renamed key must be caught...
    let renamed = json.replacen("\"sends\":", "\"send_count\":", 1);
    assert!(
        validate_json(&renamed, SCHEMA).is_err(),
        "renamed key slipped through"
    );
    // ...and so must a type change.
    let retyped = json.replacen("\"schema\":\"hypersafe.obs.v1\"", "\"schema\":1", 1);
    assert!(
        validate_json(&retyped, SCHEMA).is_err(),
        "retyped field slipped through"
    );
}

#[test]
fn snapshot_json_totals_agree_with_per_node_rows() {
    let snap = populated_snapshot();
    let doc = parse_json(&snap.to_json()).expect("snapshot must parse");
    let num = |v: &JsonValue| match v {
        JsonValue::Num(x) => *x as u64,
        other => panic!("expected number, got {other:?}"),
    };
    let JsonValue::Arr(nodes) = doc.get("per_node").expect("per_node") else {
        panic!("per_node must be an array");
    };
    let sent_sum: u64 = nodes
        .iter()
        .map(|n| num(n.get("sent").expect("sent")))
        .sum();
    let totals = doc.get("totals").expect("totals");
    assert_eq!(num(totals.get("sends").expect("sends")), sent_sum);
}
