//! Adversarial-scheduler determinism, pinned two ways:
//!
//! * a **property test**: for arbitrary seeds, running the same
//!   adversarial scenario twice yields byte-identical trace output —
//!   the scheduler's entire behavior is a pure function of its seed;
//! * a **golden recording** (`tests/goldens/dst_trace.txt`): the exact
//!   trace of one fixed adversarial GS run and one fixed adversarial
//!   lossy unicast. CI executes this test under both
//!   `RAYON_NUM_THREADS=1` and `=4` — the vendored rayon pins its pool
//!   size once per process, so cross-thread-count equivalence is
//!   proved by comparing both jobs against the same checked-in bytes
//!   (the `golden_equivalence` methodology).
//!
//! Regenerate (only when intentionally changing engine behavior):
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test dst_determinism
//! ```

use hypersafe::safety::invariants::{
    run_gs_async_checked_traced, run_unicast_lossy_checked_traced,
};
use hypersafe::safety::SafetyMap;
use hypersafe::simkit::{AdversarialScheduler, ReliableConfig, Scheduler};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};
use proptest::prelude::*;

fn fig1() -> (FaultConfig, SafetyMap) {
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
    );
    let map = SafetyMap::compute(&cfg);
    (cfg, map)
}

/// Renders the observable outcome of one adversarial GS + unicast pair
/// as text: the per-delivery hop trace plus the converged levels and
/// the unicast outcome line.
fn scenario_text(seed: u64) -> String {
    let (cfg, map) = fig1();
    let mut out = String::new();

    let sched: Box<dyn Scheduler> =
        Box::new(AdversarialScheduler::permute(seed).with_stretch(1 + seed % 7));
    let (res, trace) = run_gs_async_checked_traced(&cfg, 1, sched, true);
    let run = res.expect("gs invariants hold");
    out.push_str(&format!("gs seed={seed:#x}\n"));
    out.push_str(&trace.render());
    for a in cfg.cube().nodes() {
        out.push_str(&format!("level {a} = {}\n", run.map.level(a)));
    }

    let s = NodeId::from_binary("1110").unwrap();
    let d = NodeId::from_binary("0001").unwrap();
    let (res, trace) = run_unicast_lossy_checked_traced(
        &cfg,
        &map,
        s,
        d,
        1,
        None,
        Box::new(AdversarialScheduler::from_seed(seed)),
        ReliableConfig::default(),
        1_000_000,
        &[],
        true,
    );
    let run = res.expect("unicast invariants hold");
    out.push_str(&format!("unicast seed={seed:#x}\n"));
    out.push_str(&trace.render());
    out.push_str(&format!(
        "outcome {:?} trail {:?}\n",
        run.outcome,
        run.trail
            .as_deref()
            .map(|t| t.iter().map(|a| a.to_string()).collect::<Vec<_>>())
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ byte-identical run, for arbitrary seeds.
    #[test]
    fn same_seed_same_bytes(seed in any::<u64>()) {
        prop_assert_eq!(scenario_text(seed), scenario_text(seed));
    }

    /// Different seeds almost always produce different schedules — the
    /// adversary actually varies with its seed (guards against the
    /// scheduler silently degenerating to FIFO).
    #[test]
    fn seeds_reach_distinct_schedules(seed in 1u64..u64::MAX) {
        // Compare against seed 0's text; identical full bytes for a
        // random nonzero seed would mean the seed is ignored.
        if scenario_text(seed) == scenario_text(0) {
            // Tolerate coincidence only for tiny schedules — fig. 1
            // schedules span dozens of events, a full collision means a bug.
            prop_assert!(false, "seed {seed:#x} reproduced seed 0's schedule exactly");
        }
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/dst_trace.txt")
}

/// The fixed recording: byte-compared against the checked-in golden.
/// Running this very test under different `RAYON_NUM_THREADS` values
/// (as CI does) proves the trace does not depend on the thread count.
#[test]
fn dst_trace_matches_golden() {
    let got = scenario_text(0xD57);
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir goldens");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&path).expect("golden missing — run with GOLDEN_REGEN=1 to record");
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "dst trace diverged from the recording at line {}",
            i + 1
        );
    }
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "dst trace line count changed"
    );
}
