//! Golden equivalence harness for the engine unification refactor.
//!
//! Records the observable outcomes of every distributed entry point —
//! safety maps, unicast decisions and trails, broadcast coverage,
//! detector views, congestion summaries, and stats counters — across
//! `n ∈ {4, 6, 8}`, fault densities `{0, n, 2n}`, link-fault mixes,
//! and loss rates `{0%, 5%, 20%}`. The recorded file
//! (`tests/goldens/engine_goldens.txt`) was generated against the
//! pre-refactor twin engines; the unified engine must reproduce it
//! byte-for-byte.
//!
//! Regenerate (only when intentionally changing observable behavior):
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --test golden_equivalence
//! ```

use hypersafe::experiments::congestion_exp::simulate_burst;
use hypersafe::safety::gh_unicast_distributed::run_gh_unicast;
use hypersafe::safety::unicast_distributed::{run_unicast, run_unicast_lossy, LossyOutcome};
use hypersafe::safety::{
    detect, run_broadcast, run_delta_gs, run_gh_gs, run_gs, run_gs_async, run_gs_reliable,
    ChurnEvent, DetectorParams, GhSafetyMap, SafetyMap, TieBreak,
};
use hypersafe::simkit::{ChannelModel, EventStats, ReliableConfig, SyncStats};
use hypersafe::topology::{FaultConfig, GeneralizedHypercube, GhNode, Hypercube, NodeId};
use hypersafe::workloads::{uniform_faults, Sweep};
use std::fmt::Write as _;

/// SplitMix64: deterministic pair sampling without threading an RNG
/// through the harness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic fault instance per (n, m), drawn from the same
/// seeded sweep machinery the experiments use.
fn node_fault_cfg(n: u8, m: usize) -> FaultConfig {
    let cube = Hypercube::new(n);
    let seed = 0x601D ^ ((n as u64) << 8) ^ m as u64;
    Sweep::new(1, seed)
        .run_seq(|_, rng| FaultConfig::with_node_faults(cube, uniform_faults(cube, m, rng)))
        .pop()
        .expect("one instance")
}

/// Deterministic link-fault injection by fixed stride (mirrors the
/// bench helper so before/after comparisons see identical instances).
fn add_link_faults(mut cfg: FaultConfig, count: usize) -> FaultConfig {
    let cube = cfg.cube();
    let nodes = cube.num_nodes();
    let n = cube.dim() as u64;
    let mut inserted = 0usize;
    let mut k = 0u64;
    while inserted < count {
        let a = NodeId::new((k.wrapping_mul(0x9E37_79B9)) % nodes);
        let b = a.neighbor((k % n) as u8);
        if cfg.link_faults_mut().insert(a, b) {
            inserted += 1;
        }
        k += 1;
    }
    cfg
}

/// Deterministic healthy (s, d) pairs, s != d.
fn sample_pairs(cfg: &FaultConfig, count: usize, salt: u64) -> Vec<(NodeId, NodeId)> {
    let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
    let mut state = 0xD1CE ^ salt;
    let mut pairs = Vec::new();
    while pairs.len() < count {
        let s = healthy[(splitmix64(&mut state) % healthy.len() as u64) as usize];
        let d = healthy[(splitmix64(&mut state) % healthy.len() as u64) as usize];
        if s != d {
            pairs.push((s, d));
        }
    }
    pairs
}

fn fmt_sync_stats(s: &SyncStats) -> String {
    format!(
        "rounds_run={} active={} msgs={} changes={}",
        s.rounds_run, s.active_rounds, s.messages, s.state_changes
    )
}

fn fmt_event_stats(s: &EventStats) -> String {
    format!(
        "delivered={} dropped={} lost={} dup={} retx={} acked={} timers={} end={}",
        s.delivered,
        s.dropped,
        s.lost,
        s.duplicated,
        s.retransmitted,
        s.acked,
        s.timers,
        s.end_time
    )
}

fn fmt_levels(levels: &[u8]) -> String {
    let mut s = String::with_capacity(levels.len() * 2);
    for &l in levels {
        let _ = write!(s, "{l:x}");
    }
    s
}

fn fmt_trail(trail: &Option<Vec<NodeId>>) -> String {
    match trail {
        None => "-".to_string(),
        Some(t) => t
            .iter()
            .map(|a| a.raw().to_string())
            .collect::<Vec<_>>()
            .join(">"),
    }
}

fn fmt_lossy_outcome(o: &LossyOutcome) -> String {
    match o {
        LossyOutcome::Delivered { retransmits, delay } => {
            format!("Delivered(retx={retransmits},delay={delay})")
        }
        LossyOutcome::TimedOut => "TimedOut".to_string(),
        LossyOutcome::AbortedAt(a) => format!("AbortedAt({})", a.raw()),
        LossyOutcome::HolderFailed(a) => format!("HolderFailed({})", a.raw()),
    }
}

const LOSS_RATES: [(u64, f64); 3] = [(0, 0.0), (5, 0.05), (20, 0.20)];
const MAX_EVENTS: u64 = 2_000_000;

/// Records every observable outcome for one cube fault instance.
fn record_cube_scenario(out: &mut Vec<String>, tag: &str, cfg: &FaultConfig) {
    let n = cfg.cube().dim();

    // Synchronous GS (SyncEngine).
    let sync = run_gs(cfg);
    out.push(format!(
        "{tag} gs_sync levels={} rounds={} {}",
        fmt_levels(&sync.map.to_vec()),
        sync.map.rounds(),
        fmt_sync_stats(&sync.stats)
    ));
    if cfg.link_faults().is_empty() {
        let central = SafetyMap::compute(cfg);
        assert_eq!(
            sync.map.store(),
            central.store(),
            "{tag}: distributed GS must match the centralized fixed point"
        );
    }

    // Asynchronous event-driven GS (EventEngine).
    let (amap, astats) = run_gs_async(cfg, 3);
    out.push(format!(
        "{tag} gs_async levels={} {}",
        fmt_levels(&amap.to_vec()),
        fmt_event_stats(&astats)
    ));

    // GS over lossy channels with the reliable ARQ layer.
    for (pct, loss) in LOSS_RATES {
        let channel = ChannelModel::new(0xC4A_u64 ^ ((n as u64) << 16) ^ pct)
            .with_loss(loss)
            .with_jitter(2);
        let run = run_gs_reliable(cfg, channel, ReliableConfig::default(), 1, MAX_EVENTS);
        out.push(format!(
            "{tag} gs_reliable loss={pct} levels={} quiescent={} abandoned={} {}",
            fmt_levels(&run.map.to_vec()),
            run.quiescent,
            run.links_abandoned,
            fmt_event_stats(&run.stats)
        ));
    }

    // Unicast: lossless distributed protocol + lossy reliable variant.
    let map = sync.map.clone();
    for (i, &(s, d)) in sample_pairs(cfg, 4, n as u64).iter().enumerate() {
        let run = run_unicast(cfg, &map, s, d, 2);
        out.push(format!(
            "{tag} unicast[{i}] {}->{} decision={:?} trail={} arrival={:?} msgs={}",
            s.raw(),
            d.raw(),
            run.decision,
            fmt_trail(&run.trail),
            run.arrival_time,
            run.messages
        ));
        for (pct, loss) in LOSS_RATES {
            let channel = ChannelModel::new(0xF00D ^ ((i as u64) << 24) ^ pct)
                .with_loss(loss)
                .with_jitter(1);
            let lossy = run_unicast_lossy(
                cfg,
                &map,
                s,
                d,
                2,
                channel,
                ReliableConfig::default(),
                MAX_EVENTS,
            );
            out.push(format!(
                "{tag} unicast_lossy[{i}] loss={pct} outcome={} trail={} dupes={} {}",
                fmt_lossy_outcome(&lossy.outcome),
                fmt_trail(&lossy.trail),
                lossy.duplicate_deliveries,
                fmt_event_stats(&lossy.stats)
            ));
        }
    }

    // Broadcast from the first healthy node.
    if let Some(source) = cfg.healthy_nodes().next() {
        let b = run_broadcast(cfg, &map, source, 2);
        out.push(format!(
            "{tag} broadcast src={} coverage={} msgs={} steps={} relay={:?}",
            source.raw(),
            b.coverage(),
            b.messages,
            b.steps,
            b.relayed_via.map(|a| a.raw())
        ));
    }

    // Heartbeat fault detection.
    let det = detect(cfg, DetectorParams::default());
    let (fneg, fpos) = det.accuracy(cfg);
    out.push(format!(
        "{tag} detect msgs={} duration={} fneg={fneg} fpos={fpos}",
        det.messages, det.duration
    ));

    // Congestion: a burst of queued unicasts over the event engine.
    let pairs = sample_pairs(cfg, 6, 0xB00 ^ n as u64);
    let burst = simulate_burst(cfg, &map, &pairs, TieBreak::LowestDim);
    out.push(format!(
        "{tag} burst delivered={} mean={:.4} max={} slowdown={:.4}",
        burst.delivered, burst.mean_latency, burst.max_latency, burst.slowdown
    ));
}

/// Records the generalized-hypercube protocol trio on one instance.
fn record_gh_scenario(
    out: &mut Vec<String>,
    tag: &str,
    gh: &GeneralizedHypercube,
    faults: &hypersafe::topology::FaultSet,
) {
    let (map, stats) = run_gh_gs(gh, faults);
    out.push(format!(
        "{tag} gh_gs levels={} {}",
        fmt_levels(map.as_slice()),
        fmt_sync_stats(&stats)
    ));
    let central = GhSafetyMap::compute(gh, faults);
    assert_eq!(
        map.as_slice(),
        central.as_slice(),
        "{tag}: distributed GH GS must match the centralized fixed point"
    );

    let healthy: Vec<u64> = (0..gh.num_nodes())
        .filter(|&a| !faults.contains(NodeId::new(a)))
        .collect();
    let mut state = 0x6E ^ gh.num_nodes();
    for i in 0..4usize {
        let s = healthy[(splitmix64(&mut state) % healthy.len() as u64) as usize];
        let mut d = s;
        while d == s {
            d = healthy[(splitmix64(&mut state) % healthy.len() as u64) as usize];
        }
        let run = run_gh_unicast(gh, &map, faults, GhNode(s), GhNode(d), 2);
        let trail = match &run.trail {
            None => "-".to_string(),
            Some(t) => t
                .iter()
                .map(|a| a.raw().to_string())
                .collect::<Vec<_>>()
                .join(">"),
        };
        out.push(format!(
            "{tag} gh_unicast[{i}] {s}->{d} decision={:?} trail={trail} msgs={}",
            run.decision, run.messages
        ));
    }
}

/// Records the delta-GS actor protocol on one instance: one fresh
/// fault and (when the instance has faults) one recovery, each applied
/// incrementally from the instance's fixed point. The centralized
/// worklist engine must land on the same map, and its cost accounting
/// is part of the recording.
fn record_delta_scenario(out: &mut Vec<String>, tag: &str, cfg: &FaultConfig) {
    let map = SafetyMap::compute(cfg);
    let mut state = 0xDE17A ^ ((cfg.cube().dim() as u64) << 8) ^ cfg.node_faults().len() as u64;

    let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
    let v = healthy[(splitmix64(&mut state) % healthy.len() as u64) as usize];
    let mut cfg2 = cfg.clone();
    cfg2.node_faults_mut().insert(v);
    let run = run_delta_gs(&cfg2, &map, ChurnEvent::Fault(v), 2);
    let mut central = map.clone();
    let stats = central.apply_fault(&cfg2, v);
    assert_eq!(
        central.store(),
        run.map.store(),
        "{tag}: delta-GS must match the centralized incremental update"
    );
    out.push(format!(
        "{tag} delta_fault v={} levels={} touched={} changed={} waves={} saved={} {}",
        v.raw(),
        fmt_levels(&run.map.to_vec()),
        stats.cells_touched,
        stats.cells_changed,
        stats.waves,
        stats.rounds_saved,
        fmt_event_stats(&run.stats)
    ));

    if let Some(r) = cfg.node_faults().iter().next() {
        let mut cfg2 = cfg.clone();
        cfg2.node_faults_mut().remove(r);
        let run = run_delta_gs(&cfg2, &map, ChurnEvent::Recover(r), 2);
        let mut central = map.clone();
        let stats = central.apply_recover(&cfg2, r);
        assert_eq!(
            central.store(),
            run.map.store(),
            "{tag}: delta-GS recovery must match the centralized incremental update"
        );
        out.push(format!(
            "{tag} delta_recover v={} levels={} touched={} changed={} waves={} saved={} {}",
            r.raw(),
            fmt_levels(&run.map.to_vec()),
            stats.cells_touched,
            stats.cells_changed,
            stats.waves,
            stats.rounds_saved,
            fmt_event_stats(&run.stats)
        ));
    }
}

fn collect_goldens() -> Vec<String> {
    let mut out = Vec::new();
    for n in [4u8, 6, 8] {
        for m in [0usize, n as usize, 2 * n as usize] {
            let cfg = node_fault_cfg(n, m);
            record_cube_scenario(&mut out, &format!("n{n}/m{m}"), &cfg);
        }
        // Mixed node + link faults (centralized comparison skipped
        // inside — the fixed point there is distributed-only).
        let cfg = add_link_faults(node_fault_cfg(n, n as usize / 2), n as usize);
        record_cube_scenario(&mut out, &format!("n{n}/links{n}"), &cfg);
    }

    // GH instances: the paper's Fig. 5 cube and a flat two-dimensional
    // one exercising radix > 2 cliques.
    let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
    let f = gh.fault_set_from_strs(&["011", "100", "111", "121"]);
    record_gh_scenario(&mut out, "gh232", &gh, &f);
    let gh2 = GeneralizedHypercube::from_product(&[3, 4]);
    let f2 = gh2.fault_set_from_strs(&["00", "12", "23"]);
    record_gh_scenario(&mut out, "gh34", &gh2, &f2);

    // Delta-GS incremental updates (appended after the original
    // matrix so the pre-existing golden lines keep their positions).
    for n in [4u8, 6, 8] {
        for m in [0usize, n as usize, 2 * n as usize] {
            let cfg = node_fault_cfg(n, m);
            record_delta_scenario(&mut out, &format!("delta/n{n}/m{m}"), &cfg);
        }
    }
    out
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/engine_goldens.txt")
}

#[test]
fn engine_outcomes_match_pre_refactor_goldens() {
    let got = collect_goldens();
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir goldens");
        std::fs::write(&path, got.join("\n") + "\n").expect("write goldens");
        return;
    }
    let want_raw = std::fs::read_to_string(&path)
        .expect("goldens missing — run with GOLDEN_REGEN=1 to record");
    let want: Vec<&str> = want_raw.lines().collect();
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(
            g,
            w,
            "golden mismatch at line {} — engine behavior diverged from the \
             pre-refactor recording",
            i + 1
        );
    }
    assert_eq!(
        got.len(),
        want.len(),
        "golden line count changed ({} recorded, {} produced)",
        want.len(),
        got.len()
    );
}
