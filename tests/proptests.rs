//! Property-based tests over randomized fault configurations: the
//! paper's theorems as invariants, plus representation round-trips.

use hypersafe::baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe::safety::gh_safety::GhSafetyMap;
use hypersafe::safety::{
    check_never_fails_under_n_faults, check_property1, check_property2, check_theorem2,
    check_theorem3, run_gs, run_gs_async, NavVector, SafetyMap,
};
use hypersafe::topology::{
    connectivity, disjoint, FaultConfig, FaultSet, GeneralizedHypercube, Hypercube, NodeId,
};
use proptest::prelude::*;

/// Strategy: an (n, fault set) pair with n in 3..=7 and up to
/// `max_faults(n)` distinct faulty nodes.
fn faulty_cube(max_ratio: f64) -> impl Strategy<Value = (Hypercube, FaultSet)> {
    (3u8..=7).prop_flat_map(move |n| {
        let cube = Hypercube::new(n);
        let total = cube.num_nodes();
        let max_faults = ((total as f64 * max_ratio) as usize).max(1);
        proptest::collection::btree_set(0..total, 0..=max_faults).prop_map(move |set| {
            let faults = FaultSet::from_nodes(cube, set.into_iter().map(NodeId::new));
            (cube, faults)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: sync, async, centralized and constructive computations
    /// agree on arbitrary instances.
    #[test]
    fn theorem1_all_computations_agree((cube, faults) in faulty_cube(0.3)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let central = SafetyMap::compute(&cfg);
        prop_assert_eq!(central.check_fixed_point(&cfg), None);
        let constructive = SafetyMap::compute_constructive(&cfg);
        prop_assert_eq!(central.store(), constructive.store());
        let sync = run_gs(&cfg);
        prop_assert_eq!(central.store(), sync.map.store());
        let (async_map, _) = run_gs_async(&cfg, 3);
        prop_assert_eq!(central.store(), async_map.store());
    }

    /// Theorem 2 + Property 1 on arbitrary instances.
    #[test]
    fn theorem2_and_property1((cube, faults) in faulty_cube(0.25)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let map = SafetyMap::compute(&cfg);
        prop_assert_eq!(check_theorem2(&cfg, &map), Ok(()));
        prop_assert_eq!(check_property1(&cfg), Ok(()));
    }

    /// Theorem 3 delivery/length guarantees on arbitrary instances.
    #[test]
    fn theorem3_route_contracts((cube, faults) in faulty_cube(0.2)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let map = SafetyMap::compute(&cfg);
        prop_assert_eq!(check_theorem3(&cfg, &map), Ok(()));
    }

    /// Property 2 and the no-failure guarantee in the < n faults regime.
    #[test]
    fn property2_regime((cube, faults) in faulty_cube(0.12)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let map = SafetyMap::compute(&cfg);
        prop_assert_eq!(check_property2(&cfg, &map), Ok(()));
        if cfg.node_faults().len() < cube.dim() as usize && cube.dim() <= 5 {
            prop_assert_eq!(check_never_fails_under_n_faults(&cfg, &map), Ok(()));
        }
    }

    /// §2.3 containment chain on arbitrary instances.
    #[test]
    fn safe_set_containment((cube, faults) in faulty_cube(0.3)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let lh = LeeHayesStatus::compute(&cfg);
        let wf = WuFernandezStatus::compute(&cfg);
        let sl = SafetyMap::compute(&cfg);
        for a in cube.nodes() {
            if lh.is_safe(a) {
                prop_assert!(wf.is_safe(a));
            }
            if wf.is_safe(a) {
                prop_assert!(sl.is_safe(a));
            }
        }
    }

    /// Theorem 4 on randomized *disconnected* instances.
    #[test]
    fn theorem4_safe_sets_empty_when_disconnected((cube, faults) in faulty_cube(0.35)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        if connectivity::is_disconnected(&cfg) {
            prop_assert!(LeeHayesStatus::compute(&cfg).fully_unsafe());
            prop_assert!(WuFernandezStatus::compute(&cfg).fully_unsafe());
        }
    }

    /// Navigation vectors: hop algebra is self-inverse and terminates
    /// exactly at the destination.
    #[test]
    fn navigation_vector_algebra(s in 0u64..256, d in 0u64..256) {
        let s = NodeId::new(s);
        let d = NodeId::new(d);
        let nv = NavVector::new(s, d);
        prop_assert_eq!(nv.remaining(), s.distance(d));
        prop_assert_eq!(nv.destination(s), d);
        for i in 0..8u8 {
            prop_assert_eq!(nv.after_hop(i).after_hop(i), nv);
        }
        // Crossing every preferred dimension exactly once lands at d.
        let mut at = s;
        let mut v = nv;
        for i in nv.preferred_dims() {
            at = at.neighbor(i);
            v = v.after_hop(i);
        }
        prop_assert!(v.is_done());
        prop_assert_eq!(at, d);
    }

    /// Disjoint-path fan: n internally-disjoint paths for any pair.
    #[test]
    fn disjoint_paths_fan(n in 2u8..=6, s_raw in 0u64..64, d_raw in 0u64..64) {
        let cube = Hypercube::new(n);
        let mask = cube.num_nodes() - 1;
        let s = NodeId::new(s_raw & mask);
        let d = NodeId::new(d_raw & mask);
        prop_assume!(s != d);
        let paths = disjoint::disjoint_paths(cube, s, d);
        prop_assert_eq!(paths.len(), n as usize);
        prop_assert!(disjoint::pairwise_internally_disjoint(&paths));
        for p in &paths {
            prop_assert_eq!(p.start(), s);
            prop_assert_eq!(p.end(), d);
            prop_assert!(p.is_optimal() || p.is_suboptimal());
        }
    }

    /// GH with all radices 2 behaves exactly like the binary cube.
    #[test]
    fn gh_binary_reduction((cube, faults) in faulty_cube(0.25)) {
        let n = cube.dim();
        let gh = GeneralizedHypercube::new(&vec![2u16; n as usize]);
        let ghmap = GhSafetyMap::compute(&gh, &faults);
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let qmap = SafetyMap::compute(&cfg);
        prop_assert_eq!(ghmap.as_slice(), qmap.to_vec());
    }

    /// BFS ground truth: the safety-level route is never shorter than
    /// the true shortest path, and equals it when optimal.
    #[test]
    fn routes_respect_bfs_ground_truth((cube, faults) in faulty_cube(0.15)) {
        let cfg = FaultConfig::with_node_faults(cube, faults);
        let map = SafetyMap::compute(&cfg);
        let healthy: Vec<NodeId> = cfg.healthy_nodes().collect();
        for &s in healthy.iter().take(8) {
            for &d in healthy.iter().rev().take(8) {
                if s == d { continue; }
                let res = hypersafe::safety::route(&cfg, &map, s, d);
                if res.delivered {
                    let p = res.path.unwrap();
                    let best = connectivity::shortest_path_len(&cfg, s, d).unwrap();
                    prop_assert!(p.len() >= best);
                    if p.is_optimal() {
                        prop_assert_eq!(p.len(), best);
                    }
                }
            }
        }
    }
}
