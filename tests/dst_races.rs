//! Fault-injection races under adversarial scheduling: a node dies
//! while the message that needs it is already in flight. Two windows
//! matter most — the **final hop** (destination dies as the last data
//! message races toward it) and an **in-flight ARQ retransmit** (the
//! next-hop holder dies between a loss and the retransmission that
//! would have recovered it). Every race must preserve exactly-once
//! delivery and trail validity; only *whether* delivery happens may
//! change. The same scenarios are cross-checked against the
//! hop-granular [`route_dynamic`] taxonomy (`reroute.rs`) and the
//! maintenance-strategy replay (`maintenance.rs`).

use hypersafe::safety::invariants::{
    check_gs_convergence, check_lossy_outcome, run_gs_async_checked, run_unicast_lossy_checked,
};
use hypersafe::safety::reroute::{route_dynamic, DynamicOutcome, FaultEvent};
use hypersafe::safety::{
    replay, route, LossyOutcome, SafetyMap, Strategy, Timeline, TimelineEvent,
};
use hypersafe::simkit::{AdversarialScheduler, ChannelModel, ReliableConfig};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};

fn fig1() -> (FaultConfig, SafetyMap) {
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
    );
    let map = SafetyMap::compute(&cfg);
    (cfg, map)
}

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

/// Kill the destination at every instant across the delivery window.
/// Early kills must fail the handoff, late kills must not matter, and
/// nothing in between may ever break exactly-once or trail validity.
#[test]
fn fault_racing_the_final_hop() {
    let (cfg, map) = fig1();
    let (s, d) = (n("1110"), n("0001"));
    let mut delivered = 0u32;
    let mut failed = 0u32;
    for t in 0..=20u64 {
        for seed in [3u64, 0xD57] {
            let run = run_unicast_lossy_checked(
                &cfg,
                &map,
                s,
                d,
                1,
                None,
                Box::new(AdversarialScheduler::permute(seed).with_stretch(2)),
                ReliableConfig::default(),
                1_000_000,
                &[(d, t)],
            )
            .unwrap_or_else(|v| panic!("kill d at t={t} seed={seed}: {v}"));
            check_lossy_outcome(&cfg, s, d, &run, 1)
                .unwrap_or_else(|v| panic!("kill d at t={t} seed={seed}: {v:?}"));
            match run.outcome {
                LossyOutcome::Delivered { .. } => delivered += 1,
                _ => failed += 1,
            }
        }
    }
    // The sweep must actually straddle the race window: some kills land
    // before the final hop commits, some after.
    assert!(delivered > 0, "no kill time was late enough to miss");
    assert!(failed > 0, "no kill time was early enough to hit");
}

/// Heavy loss forces retransmissions; kill the first-hop holder at
/// every instant across the retransmit window. The ARQ layer must
/// never double-deliver no matter where in the handshake the holder
/// dies, and the message must die with the holder — never vanish into
/// a half-completed handoff that later "recovers" a second copy.
#[test]
fn fault_racing_an_inflight_retransmit() {
    let (cfg, map) = fig1();
    let (s, d) = (n("1110"), n("0001"));
    let first_hop = {
        let res = route(&cfg, &map, s, d);
        res.path.expect("fig. 1 pair is feasible").nodes()[1]
    };
    let mut delivered = 0u32;
    let mut holder_failed = 0u32;
    for t in 0..=25u64 {
        let run = run_unicast_lossy_checked(
            &cfg,
            &map,
            s,
            d,
            1,
            // 30% loss: the first data message is frequently lost, so
            // kills land between retransmission attempts.
            Some(ChannelModel::lossy(0xACE ^ t, 0.3)),
            Box::new(AdversarialScheduler::from_seed(t)),
            ReliableConfig::default(),
            1_000_000,
            &[(first_hop, t)],
        )
        .unwrap_or_else(|v| panic!("kill {first_hop} at t={t}: {v}"));
        check_lossy_outcome(&cfg, s, d, &run, 1)
            .unwrap_or_else(|v| panic!("kill {first_hop} at t={t}: {v:?}"));
        match run.outcome {
            LossyOutcome::Delivered { .. } => delivered += 1,
            LossyOutcome::HolderFailed(h) => {
                assert_eq!(h, first_hop, "died at the killed holder, not elsewhere");
                holder_failed += 1;
            }
            other => panic!("kill {first_hop} at t={t}: unexpected outcome {other:?}"),
        }
    }
    assert!(delivered > 0, "some kill must land after the hop cleared");
    assert!(holder_failed > 0, "some kill must land inside the window");
}

/// The hop-granular reroute taxonomy agrees with the event-level one:
/// a destination that dies before the last hop is `DestinationFailed`,
/// a holder that dies with the message is `HolderFailed`, and a death
/// after delivery changes nothing.
#[test]
fn reroute_taxonomy_matches_the_race_outcomes() {
    let (cfg, map) = fig1();
    let (s, d) = (n("1110"), n("0001"));
    let h = s.distance(d);
    let path = route(&cfg, &map, s, d)
        .path
        .expect("feasible")
        .nodes()
        .to_vec();

    // Destination dies mid-flight (before hop H completes).
    let early = route_dynamic(
        cfg.cube(),
        cfg.node_faults(),
        &[FaultEvent {
            after_hop: 1,
            node: d,
        }],
        s,
        d,
    );
    assert_eq!(early.outcome, DynamicOutcome::DestinationFailed);

    // An intermediate holder dies exactly when it holds the message.
    let mid = route_dynamic(
        cfg.cube(),
        cfg.node_faults(),
        &[FaultEvent {
            after_hop: 1,
            node: path[1],
        }],
        s,
        d,
    );
    assert_eq!(mid.outcome, DynamicOutcome::HolderFailed(path[1]));

    // A death after the walk completed is invisible.
    let late = route_dynamic(
        cfg.cube(),
        cfg.node_faults(),
        &[FaultEvent {
            after_hop: h + 1,
            node: path[1],
        }],
        s,
        d,
    );
    assert_eq!(late.outcome, DynamicOutcome::Delivered);
}

/// After a mid-run kill, the *survivors'* GS protocol must
/// re-stabilize to the new fixed point even under an adversarial
/// schedule — the state-change-driven maintenance loop depends on it.
#[test]
fn gs_restabilizes_after_a_kill_under_adversarial_schedules() {
    let (cfg, _) = fig1();
    let victim = n("1111");
    let mut faults = cfg.node_faults().clone();
    faults.insert(victim);
    let cfg2 = FaultConfig::with_node_faults(cfg.cube(), faults);
    for seed in [0u64, 7, 0xD57] {
        let run = run_gs_async_checked(
            &cfg2,
            1,
            Box::new(AdversarialScheduler::permute(seed).with_stretch(4)),
        )
        .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        check_gs_convergence(&cfg2, &run).unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
    }
}

/// Maintenance tie-in: with faults landing between unicasts, the
/// state-change-driven strategy keeps every unicast on fresh levels,
/// while demand-driven refreshes lazily but never routes stale.
#[test]
fn maintenance_strategies_absorb_the_same_fault_race() {
    let cube = Hypercube::new(4);
    let mut tl = Timeline::new();
    tl.push(0, TimelineEvent::Unicast(n("1110"), n("0001")));
    tl.push(5, TimelineEvent::Fault(n("1111")));
    tl.push(6, TimelineEvent::Unicast(n("1110"), n("0001")));
    tl.push(9, TimelineEvent::Fault(n("0101")));
    tl.push(12, TimelineEvent::Unicast(n("0111"), n("1000")));
    for strategy in [Strategy::StateChangeDriven, Strategy::DemandDriven] {
        let rep = replay(cube, &tl, strategy);
        assert_eq!(rep.unicasts, 3);
        assert_eq!(
            rep.stale_unicasts, 0,
            "{strategy:?} let a unicast run on stale levels"
        );
    }
}
