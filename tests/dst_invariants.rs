//! Deterministic simulation testing at fixed seeds: 256 scenarios per
//! cube size through the full invariant suite, a known-hard corpus
//! pinned under `tests/corpus/`, and the shrinker's acceptance test —
//! a deliberately broken actor whose violation delta-debugs down to a
//! single injected event and replays byte-identically from its seed.

use hypersafe::safety::invariants::{
    check_gs_convergence, check_lossy_outcome, run_gs_async_checked, run_unicast_lossy_checked,
};
use hypersafe::safety::SafetyMap;
use hypersafe::simkit::{
    explore as mc_explore, parse_artifact_path, render_artifact, replay as mc_replay,
    shrink_injections, Actor, AdversarialScheduler, Ctx, EventEngine, HypercubeNet, Invariant,
    McCheck, McConfig, McHasher, McReplay, McReport, McSnapshot, ReliableConfig, Scheduler,
    StateHash, Time, Trace,
};
use hypersafe::topology::{FaultConfig, Hypercube, NodeId};
use hypersafe::workloads::{random_pair, uniform_faults, Sweep, STANDARD_PROFILES};
use rand::Rng;

/// One seed's full scenario on an `n`-cube, everything derived from
/// `(master, n, i)`: fault placement, adversary seeds, pair, kills.
/// Mirrors what `repro dst` sweeps, pinned here at fixed seeds so CI
/// failures name an exact reproducer.
fn check_seed(n: u8, i: u32, master: u64) -> Result<(), String> {
    let sweep = Sweep::new(1, master ^ ((n as u64) << 32) ^ i as u64);
    let mut rng = sweep.trial_rng(0);
    let cube = Hypercube::new(n);
    let m = (i as usize) % (n as usize + 2);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, m, &mut rng));

    // GS leg: reorder/stretch adversary, descent + convergence.
    let gs_seed: u64 = rng.gen();
    let run = run_gs_async_checked(
        &cfg,
        1,
        Box::new(AdversarialScheduler::permute(gs_seed).with_stretch(1 + gs_seed % 7)),
    )
    .map_err(|v| format!("n={n} i={i}: {v}"))?;
    check_gs_convergence(&cfg, &run).map_err(|v| format!("n={n} i={i}: {v:?}"))?;

    // Unicast leg: channel loss + seeded bursts + optional kills.
    let map = SafetyMap::compute(&cfg);
    let (mut s, mut d) = random_pair(&cfg, &mut rng);
    while s == d {
        let (s2, d2) = random_pair(&cfg, &mut rng);
        s = s2;
        d = d2;
    }
    let uni_seed: u64 = rng.gen();
    let prof = &STANDARD_PROFILES[(i as usize) % STANDARD_PROFILES.len()];
    let channel = (prof.loss > 0.0 || prof.duplicate > 0.0 || prof.jitter > 0)
        .then(|| prof.channel(uni_seed));
    let mut kills: Vec<(NodeId, Time)> = Vec::new();
    if rng.gen_bool(0.25) {
        let victim = NodeId::new(rng.gen_range(0..cube.num_nodes()));
        if victim != s && !cfg.node_faulty(victim) {
            kills.push((victim, rng.gen_range(0..30)));
        }
    }
    let run = run_unicast_lossy_checked(
        &cfg,
        &map,
        s,
        d,
        1,
        channel,
        Box::new(AdversarialScheduler::from_seed(uni_seed)),
        ReliableConfig::default(),
        1_000_000,
        &kills,
    )
    .map_err(|v| format!("n={n} i={i}: {v}"))?;
    check_lossy_outcome(&cfg, s, d, &run, kills.len() as u64)
        .map_err(|v| format!("n={n} i={i}: {v:?}"))
}

#[test]
fn fixed_seeds_n4_pass_the_invariant_suite() {
    let failures: Vec<String> = Sweep::new(256, 0)
        .run(|i, _| check_seed(4, i, 0xD57_F1C5).err())
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn fixed_seeds_n6_pass_the_invariant_suite() {
    let failures: Vec<String> = Sweep::new(256, 0)
        .run(|i, _| check_seed(6, i, 0xD57_F1C5).err())
        .into_iter()
        .flatten()
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The corpus pins seeds that historically stressed each protocol
/// hardest (most retransmissions / longest converging schedules):
/// format `n index master` per line, `#` comments. They run through
/// the same suite as the random sweep, forever.
#[test]
fn corpus_hard_seeds_stay_green() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/dst_hard_seeds.txt");
    let text = std::fs::read_to_string(&path).expect("corpus file present");
    let mut ran = 0;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `service n seed` entries belong to the routing-service suite
        // (tests/service_lifecycle.rs replays them).
        if line.starts_with("service") {
            continue;
        }
        let mut it = line.split_whitespace();
        let n: u8 = it.next().unwrap().parse().unwrap();
        let i: u32 = it.next().unwrap().parse().unwrap();
        let master: u64 = {
            let t = it.next().unwrap();
            u64::from_str_radix(t.trim_start_matches("0x"), 16).unwrap()
        };
        check_seed(n, i, master).unwrap_or_else(|e| panic!("corpus line {line:?}: {e}"));
        ran += 1;
    }
    assert!(ran >= 2, "corpus unexpectedly empty");
}

// ---------------------------------------------------------------------
// The shrinker acceptance test: a deliberately broken actor.
// ---------------------------------------------------------------------

/// Poison tag: the one timer value that triggers the planted bug.
const POISON: u64 = 13;

/// A test-only broken actor. On a timer it relays the tag to its
/// dimension-0 neighbor; on receiving the poison value it *raises* its
/// level — exactly the monotone-descent bug the DST invariants exist
/// to catch.
#[derive(Clone)]
struct BrokenNode {
    level: u64,
}

/// The broken actor's canonical protocol state is just its level.
impl StateHash for BrokenNode {
    fn state_hash(&self, h: &mut McHasher) {
        h.write_u64(self.level);
    }
}

impl Actor for BrokenNode {
    type Msg = u64;

    fn on_message(&mut self, _ctx: &mut Ctx<u64>, _from: NodeId, msg: u64) {
        if msg == POISON {
            self.level += 1; // the planted bug
        } else {
            self.level = self.level.saturating_sub(1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<u64>, tag: u64) {
        let dst = ctx.self_id().neighbor(0);
        ctx.send(dst, tag, 1);
    }
}

/// Levels must never rise — the same shape as `GsLevelsDescend`, over
/// the broken actor.
struct NeverRises {
    prev: Vec<u64>,
}

impl<'n> Invariant<HypercubeNet<'n>, BrokenNode> for NeverRises {
    fn name(&self) -> &'static str {
        "never-rises"
    }

    fn check(&mut self, eng: &EventEngine<'_, HypercubeNet<'n>, BrokenNode>) -> Result<(), String> {
        for (a, node) in eng.actors_iter() {
            let prev = self.prev[a.raw() as usize];
            if node.level > prev {
                return Err(format!("{a} rose from {prev} to {}", node.level));
            }
            self.prev[a.raw() as usize] = node.level;
        }
        Ok(())
    }
}

/// Runs the broken actor under the given injected timer events
/// (`(node, tag, delay)`), returning the violation (if any) and the
/// full delivery trace.
fn broken_run(
    cfg: &FaultConfig,
    seed: u64,
    injections: &[(NodeId, u64, Time)],
) -> (Option<String>, Trace) {
    let net = HypercubeNet::new(cfg);
    let mut eng = EventEngine::with_parts(
        &net,
        None,
        Box::new(AdversarialScheduler::permute(seed)) as Box<dyn Scheduler>,
        |_| BrokenNode { level: 100 },
    );
    eng.set_trace(Box::new(Trace::enabled()));
    for &(dst, tag, delay) in injections {
        eng.inject(dst, tag, delay);
    }
    let mut inv = NeverRises {
        prev: vec![100; cfg.cube().num_nodes() as usize],
    };
    let res = eng.run_checked(100_000, &mut [&mut inv]);
    let trace = eng
        .take_trace()
        .and_then(|t| t.into_trace())
        .unwrap_or_default();
    (res.err().map(|v| v.to_string()), trace)
}

#[test]
fn planted_violation_shrinks_to_one_event_and_replays_byte_identically() {
    let seed = 0xB0B0_CAFE_u64;
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::fault_free(cube);

    // 40 injected timer events, exactly one of them poisonous.
    let mut injections: Vec<(NodeId, u64, Time)> = (0..40u64)
        .map(|k| (NodeId::new(k % cube.num_nodes()), k % 7, 1 + k))
        .collect();
    injections[23].1 = POISON;

    let (violation, _) = broken_run(&cfg, seed, &injections);
    let violation = violation.expect("the planted bug must trip the invariant");
    assert!(violation.contains("never-rises"), "{violation}");

    // ddmin the injection list down to a 1-minimal reproducer.
    let shrunk = shrink_injections(&injections, |subset| {
        broken_run(&cfg, seed, subset).0.is_some()
    });
    assert!(
        shrunk.len() <= 10,
        "shrinker left {} events: {shrunk:?}",
        shrunk.len()
    );
    assert!(
        shrunk.iter().any(|&(_, tag, _)| tag == POISON),
        "minimal reproducer lost the poison event: {shrunk:?}"
    );
    // Still failing, and 1-minimal here means exactly the poison event.
    assert_eq!(shrunk.len(), 1, "{shrunk:?}");

    // Replay from the printed seed: two runs of the shrunk reproducer
    // render byte-identical traces and the same violation.
    println!("reproducer: seed={seed:#x} injections={shrunk:?}");
    let (v1, t1) = broken_run(&cfg, seed, &shrunk);
    let (v2, t2) = broken_run(&cfg, seed, &shrunk);
    assert_eq!(v1, v2);
    assert!(v1.is_some());
    assert_eq!(t1.render(), t2.render(), "replay diverged");
}

// ---------------------------------------------------------------------
// The same planted bug through the model checker: found exhaustively,
// ddmin-shrunk, written as a seedless path artifact, replayed
// byte-identically.
// ---------------------------------------------------------------------

/// The state-local reformulation of `NeverRises`: levels start at 100
/// and only the poison raises one above it, so `level <= 100` at every
/// reachable state is exactly the planted bug's signature.
fn mc_broken_checks<'a>() -> [McCheck<'a, BrokenNode>; 1] {
    [McCheck {
        name: "mc-never-rises",
        terminal_only: false,
        check: Box::new(|s: &McSnapshot<'_, BrokenNode>| {
            for (v, a) in s.actors.iter().enumerate() {
                if let Some(a) = a {
                    if a.level > 100 {
                        return Err(format!("node {v} rose to {}", a.level));
                    }
                }
            }
            Ok(())
        }),
    }]
}

fn mc_broken(cfg: &FaultConfig, injections: &[(NodeId, u64)]) -> McReport {
    let net = HypercubeNet::new(cfg);
    mc_explore(
        &net,
        |_| BrokenNode { level: 100 },
        injections,
        &McConfig::default(),
        &mc_broken_checks(),
    )
}

fn mc_broken_replay(cfg: &FaultConfig, injections: &[(NodeId, u64)], path: &[u32]) -> McReplay {
    let net = HypercubeNet::new(cfg);
    mc_replay(
        &net,
        |_| BrokenNode { level: 100 },
        injections,
        &McConfig::default(),
        &mc_broken_checks(),
        path,
    )
}

/// The minimal reproducer ddmin converges to: one poisoned timer on
/// node 1 (which relays the poison to node 0). The pinned artifact in
/// `tests/corpus/` replays against exactly this system.
const MC_MINIMAL_INJECTIONS: [(NodeId, u64); 1] = [(NodeId(1), POISON)];

#[test]
fn mc_finds_shrinks_and_replays_the_planted_violation() {
    let cube = Hypercube::new(2);
    let cfg = FaultConfig::fault_free(cube);

    // Six injected timers, one poisonous.
    let mut inj: Vec<(NodeId, u64)> = (0..6u64).map(|k| (NodeId::new(k % 4), k % 3)).collect();
    inj[3] = (NodeId::new(1), POISON);

    let rep = mc_broken(&cfg, &inj);
    let v = rep.violation.as_ref().expect("checker must find the bug");
    assert_eq!(v.property, "mc-never-rises");

    // ddmin over injection subsets with the checker as the oracle.
    let shrunk = shrink_injections(&inj, |sub| mc_broken(&cfg, sub).violation.is_some());
    assert_eq!(shrunk, MC_MINIMAL_INJECTIONS.to_vec(), "{shrunk:?}");

    // Counterexample of the minimal system, replayed twice: the
    // rendered schedule and the per-step state hashes must match
    // byte-for-byte — the path alone is the reproducer, no seed.
    let rep = mc_broken(&cfg, &shrunk);
    let mut v = rep
        .violation
        .clone()
        .expect("minimal system still violates");
    let r1 = mc_broken_replay(&cfg, &shrunk, &v.path);
    let r2 = mc_broken_replay(&cfg, &shrunk, &v.path);
    assert_eq!(r1.rendered, r2.rendered, "replay diverged");
    assert_eq!(r1.state_hashes, r2.state_hashes);
    assert_eq!(
        r1.violation.as_ref().map(|(p, _)| p.as_str()),
        Some("mc-never-rises")
    );

    // Artifact round-trip: the path survives render + parse.
    v.rendered = r1.rendered.clone();
    let artifact = render_artifact(&v);
    println!("{artifact}");
    assert_eq!(parse_artifact_path(&artifact), Some(v.path.clone()));

    // The engine agrees: the same minimal injection trips run_checked.
    let eng_inj: Vec<(NodeId, u64, Time)> = shrunk.iter().map(|&(a, t)| (a, t, 1)).collect();
    let (violation, _) = broken_run(&cfg, 7, &eng_inj);
    assert!(violation
        .expect("engine reproduces it")
        .contains("never-rises"));
}

#[test]
fn pinned_mc_counterexample_replays_byte_identically() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/mc_broken_counterexample.txt");
    let text = std::fs::read_to_string(&path).expect("pinned mc counterexample present");
    let steps = parse_artifact_path(&text).expect("artifact has a path line");
    let cube = Hypercube::new(2);
    let cfg = FaultConfig::fault_free(cube);
    let r = mc_broken_replay(&cfg, &MC_MINIMAL_INJECTIONS, &steps);
    assert_eq!(
        r.violation.as_ref().map(|(p, _)| p.as_str()),
        Some("mc-never-rises"),
        "pinned path no longer reaches the violation"
    );
    let stored = text.split_once("--\n").expect("artifact body").1;
    assert_eq!(r.rendered, stored, "pinned replay diverged");
}

#[test]
fn clean_actor_run_passes_the_same_invariant() {
    // Same harness, no poison: the invariant holds over all 40 events.
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::fault_free(cube);
    let injections: Vec<(NodeId, u64, Time)> = (0..40u64)
        .map(|k| (NodeId::new(k % cube.num_nodes()), k % 7, 1 + k))
        .collect();
    let (violation, trace) = broken_run(&cfg, 1, &injections);
    assert_eq!(violation, None);
    assert!(!trace.render().is_empty(), "relays must have produced hops");
}
