//! Property-based exactness tests for the incremental safety-level
//! engine: after *any* random fault/recover churn sequence, the
//! incrementally-maintained map must be byte-identical to a
//! from-scratch [`SafetyMap::compute`] at every step — and the
//! distributed delta-GS actor run must land on the same map.

use hypersafe::safety::{run_delta_gs, ChurnEvent, SafetyMap};
use hypersafe::topology::{FaultConfig, Hypercube, NodeId};
use proptest::prelude::*;

/// Decodes one raw word into the next churn event for the current
/// fault state: even words (with any live fault) recover a faulty
/// node, odd words fault a healthy one. Always yields a genuine
/// transition, which is what `apply_fault`/`apply_recover` require.
fn decode_event(cfg: &FaultConfig, word: u64) -> ChurnEvent {
    let cube = cfg.cube();
    let live: Vec<NodeId> = cfg.node_faults().iter().collect();
    if !live.is_empty() && word.is_multiple_of(2) {
        ChurnEvent::Recover(live[(word / 2 % live.len() as u64) as usize])
    } else {
        let healthy: Vec<NodeId> = cube.nodes().filter(|&a| !cfg.node_faulty(a)).collect();
        ChurnEvent::Fault(healthy[(word / 2 % healthy.len() as u64) as usize])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole exactness contract: every step of every churn
    /// sequence, incremental == from-scratch, byte for byte.
    #[test]
    fn incremental_matches_scratch_at_every_step(
        n in 4u8..=8,
        words in proptest::collection::vec(any::<u64>(), 1..=16),
    ) {
        let cube = Hypercube::new(n);
        let mut cfg = FaultConfig::fault_free(cube);
        let mut map = SafetyMap::compute(&cfg);
        for &word in words.iter().take(2 * n as usize) {
            match decode_event(&cfg, word) {
                ChurnEvent::Fault(a) => {
                    cfg.node_faults_mut().insert(a);
                    map.apply_fault(&cfg, a);
                }
                ChurnEvent::Recover(a) => {
                    cfg.node_faults_mut().remove(a);
                    map.apply_recover(&cfg, a);
                }
            }
            let scratch = SafetyMap::compute(&cfg);
            prop_assert_eq!(map.store(), scratch.store());
            prop_assert_eq!(map.check_fixed_point(&cfg), None);
        }
    }

    /// The distributed form of the same contract: the delta-GS actor
    /// run converges to the centralized incremental map at every step.
    #[test]
    fn delta_gs_matches_centralized_at_every_step(
        n in 4u8..=6,
        words in proptest::collection::vec(any::<u64>(), 1..=8),
    ) {
        let cube = Hypercube::new(n);
        let mut cfg = FaultConfig::fault_free(cube);
        let mut map = SafetyMap::compute(&cfg);
        for &word in &words {
            let ev = decode_event(&cfg, word);
            let prev = map.clone();
            match ev {
                ChurnEvent::Fault(a) => {
                    cfg.node_faults_mut().insert(a);
                    map.apply_fault(&cfg, a);
                }
                ChurnEvent::Recover(a) => {
                    cfg.node_faults_mut().remove(a);
                    map.apply_recover(&cfg, a);
                }
            }
            let run = run_delta_gs(&cfg, &prev, ev, 1);
            prop_assert_eq!(run.map.store(), map.store());
            prop_assert!(run.monotone, "delta-GS levels moved against the event's direction");
        }
    }
}

/// `route_many` must produce bitwise-identical outcomes whether it
/// takes the fork/join path or the single-thread sequential fallback
/// (`RAYON_NUM_THREADS=1`). The vendored rayon resolves its thread
/// count once per process, so the fallback branch is exercised in a
/// pinned child process of this same test binary and compared by
/// fingerprint against the in-process parallel run and the plain
/// sequential loop.
#[test]
fn route_many_single_thread_fallback_matches_parallel() {
    use hypersafe::safety::{route_many, route_many_seq};
    use hypersafe::topology::FaultSet;
    use std::hash::{Hash, Hasher};

    let cube = Hypercube::new(8);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(
            cube,
            &["00000011", "00010100", "01100000", "10000001", "11110000"],
        ),
    );
    let map = SafetyMap::compute(&cfg);
    let pairs: Vec<(NodeId, NodeId)> = cube
        .nodes()
        .flat_map(|s| cube.nodes().map(move |d| (s, d)))
        .collect();
    let fingerprint = |out: &[hypersafe::safety::BatchOutcome]| -> u64 {
        let mut h = std::hash::DefaultHasher::new();
        format!("{out:?}").hash(&mut h);
        h.finish()
    };
    let expect = fingerprint(&route_many_seq(&cfg, &map, &pairs));

    if std::env::var("HYPERSAFE_ROUTE_MANY_CHILD").is_ok() {
        // Child: pinned to one worker, so route_many takes the
        // sequential fallback branch.
        assert_eq!(rayon::num_threads(), 1, "child must be pinned");
        let got = fingerprint(&route_many(&cfg, &map, &pairs));
        println!("route_many_fingerprint={got:016x}");
        assert_eq!(got, expect);
        return;
    }

    assert_eq!(
        fingerprint(&route_many(&cfg, &map, &pairs)),
        expect,
        "parallel path matches the sequential loop"
    );
    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "route_many_single_thread_fallback_matches_parallel",
            "--exact",
            "--nocapture",
        ])
        .env("RAYON_NUM_THREADS", "1")
        .env("HYPERSAFE_ROUTE_MANY_CHILD", "1")
        .output()
        .expect("spawn pinned child");
    assert!(
        out.status.success(),
        "pinned child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The libtest runner may glue the marker onto its own "test ..."
    // line, so search by substring rather than line prefix.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let hex = stdout
        .split("route_many_fingerprint=")
        .nth(1)
        .map(|rest| &rest[..16])
        .expect("child printed its fingerprint");
    let got = u64::from_str_radix(hex, 16).expect("hex fingerprint");
    assert_eq!(got, expect, "fallback outcomes identical to parallel");
}

/// n = 16 scale smoke: the plane kernels, the scalar reference, and
/// the constructive path agree on a 65,536-node cube — the largest
/// size the reference oracle can cover at test speed.
#[test]
fn scale_smoke_n16_packed_matches_scalar_reference() {
    let cube = Hypercube::new(16);
    let mut cfg = FaultConfig::fault_free(cube);
    for i in 0..24u64 {
        cfg.node_faults_mut()
            .insert(NodeId::new(i * 2731 % cube.num_nodes()));
    }
    let map = SafetyMap::compute(&cfg);
    assert_eq!(map.to_vec(), SafetyMap::compute_reference_levels(&cfg));
    assert_eq!(map.store(), SafetyMap::compute_constructive(&cfg).store());
}

/// n = 20 scale smoke: a million-node cube computes on the packed
/// planes, stays within the 1 byte/node store ceiling, and a
/// single-fault incremental update matches a from-scratch plane
/// recompute byte for byte. (No scalar oracle here — the plane
/// kernels cross-check each other, and the n = 16 smoke pins them to
/// the scalar semantics.)
#[test]
fn scale_smoke_n20_million_node_incremental() {
    let cube = Hypercube::new(20);
    let mut cfg = FaultConfig::fault_free(cube);
    for i in 1..=12u64 {
        cfg.node_faults_mut()
            .insert(NodeId::new(i * 87_381 % cube.num_nodes()));
    }
    let mut map = SafetyMap::compute(&cfg);
    assert_eq!(map.store(), SafetyMap::compute_constructive(&cfg).store());
    let bpn = map.store().memory_bytes() as f64 / cube.num_nodes() as f64;
    assert!(bpn <= 1.0, "store is {bpn:.4} bytes/node");

    let v = NodeId::new(777_777);
    assert!(!cfg.node_faulty(v));
    cfg.node_faults_mut().insert(v);
    map.apply_fault(&cfg, v);
    assert_eq!(map.store(), SafetyMap::compute(&cfg).store());
}
