//! End-to-end lifecycle proptests for the resilient routing service:
//! every request reaches exactly one terminal state, deadlines are
//! honored within the documented +1 tick, cancellation is idempotent,
//! seeded runs replay byte-identically under the adversarial
//! scheduler, and — the epoch-snapshot contract — every route planned
//! at epoch `k` is valid against archived snapshot `k`.
//!
//! When a property fails here, proptest persists the shrunk case to
//! `tests/service_lifecycle.proptest-regressions`; genuinely hard
//! service schedules worth pinning forever belong in
//! `tests/corpus/dst_hard_seeds.txt` next to the DST corpus.

use hypersafe::safety::{SafetyService, SafetyState};
use hypersafe::simkit::{
    AdversarialScheduler, AttemptVerdict, DeliveryRung, Epoch, Injection, RejectReason, ReqState,
    RoutingService, ServiceConfig, Terminal,
};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{open_loop_mix, OpenLoop};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Generates the standard soak mix and runs it to completion under an
/// adversarial (seed-permuted) schedule.
fn soak(seed: u64, n: u8, requests: u64, churn_prob: f64) -> RoutingService<SafetyService> {
    let cube = Hypercube::new(n);
    let wl = OpenLoop {
        requests,
        churn_prob,
        max_live_faults: usize::from(n - 1),
        cancel_prob: 0.05,
        ..OpenLoop::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let injections = open_loop_mix(cube, &wl, &mut rng);
    let provider = SafetyService::new(FaultConfig::fault_free(cube));
    let mut svc = RoutingService::with_scheduler(
        provider,
        ServiceConfig::default(),
        Box::new(AdversarialScheduler::permute(seed)),
    );
    svc.load(&injections);
    svc.run();
    svc
}

/// Full observable outcome of a run, for byte-identity comparisons.
fn fingerprint(svc: &RoutingService<SafetyService>) -> String {
    let records: Vec<_> = svc.request_records().collect();
    format!(
        "{records:?}|{}|{:?}|{}",
        svc.stats().render(),
        svc.violations(),
        svc.now()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Liveness + uniqueness: every submitted request ends in exactly
    /// one terminal state, and the run reports no invariant
    /// violations.
    #[test]
    fn every_request_reaches_exactly_one_terminal(
        seed in any::<u64>(),
        n in 4u8..=6,
    ) {
        let svc = soak(seed, n, 300, 0.15);
        prop_assert_eq!(svc.violations(), &[] as &[String]);
        prop_assert_eq!(svc.stats().invariant_violations, 0);
        let mut terminals = 0u64;
        for (state, _, _, _, _) in svc.request_records() {
            prop_assert!(
                matches!(state, ReqState::Done(_)),
                "request left non-terminal: {state:?}"
            );
            terminals += 1;
        }
        prop_assert_eq!(terminals, svc.num_requests() as u64);
        // The per-rung counters partition the requests: each request
        // was counted on exactly one rung.
        prop_assert_eq!(svc.stats().terminals(), terminals);
    }

    /// Deadlines are honored within the documented +1 tick: the
    /// Deadline event at `deadline + 1` is the only TimedOut source,
    /// and nothing outlives it.
    #[test]
    fn deadlines_hold_within_one_tick(
        seed in any::<u64>(),
        n in 4u8..=6,
    ) {
        let svc = soak(seed, n, 300, 0.15);
        for (state, submit, deadline, done_at, _) in svc.request_records() {
            prop_assert!(
                done_at <= deadline + 1,
                "terminal at {done_at} past deadline {deadline} (+1): {state:?}"
            );
            prop_assert!(done_at >= submit, "terminal precedes submission");
        }
    }

    /// Cancellation is idempotent: duplicating every cancel (and
    /// re-cancelling after the deadline) changes no observable
    /// outcome.
    #[test]
    fn cancel_is_idempotent(
        seed in any::<u64>(),
        n in 4u8..=6,
    ) {
        let cube = Hypercube::new(n);
        let wl = OpenLoop {
            requests: 200,
            churn_prob: 0.1,
            max_live_faults: usize::from(n - 1),
            cancel_prob: 0.25,
            ..OpenLoop::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = open_loop_mix(cube, &wl, &mut rng);
        // Doubled: every cancel twice at its tick, plus a late
        // re-cancel long after the request must be terminal.
        let mut doubled = Vec::with_capacity(base.len() * 2);
        for inj in &base {
            doubled.push(*inj);
            if let Injection::Cancel { at, req } = *inj {
                doubled.push(Injection::Cancel { at, req });
                doubled.push(Injection::Cancel { at: at + 10_000, req });
            }
        }
        // FIFO schedule: the duplicated events must be pure no-ops.
        // (Under the adversarial scheduler the extra events would
        // consume permutation draws and legitimately reshuffle
        // same-tick order — that perturbs schedules, not outcomes.)
        let run = |injections: &[Injection]| {
            let provider = SafetyService::new(FaultConfig::fault_free(cube));
            let mut svc = RoutingService::new(provider, ServiceConfig::default());
            svc.load(injections);
            svc.run();
            let records: Vec<_> = svc.request_records().collect();
            format!("{records:?}")
        };
        prop_assert_eq!(run(&base), run(&doubled));
    }

    /// Determinism: the same seed replays the whole run — every
    /// record, counter, and the final clock — byte-identically, even
    /// under the adversarial same-tick permutation.
    #[test]
    fn seeded_replay_is_byte_identical(
        seed in any::<u64>(),
        n in 4u8..=6,
    ) {
        let a = fingerprint(&soak(seed, n, 250, 0.2));
        let b = fingerprint(&soak(seed, n, 250, 0.2));
        prop_assert_eq!(a, b);
    }

    /// The epoch-snapshot contract: a route planned at epoch `k` is a
    /// valid walk of snapshot `k` — consecutive trail nodes adjacent,
    /// every hop healthy *in that snapshot*, ending at the
    /// destination in exactly `hops` steps. (Staleness against the
    /// live set is allowed — that is what the retry rung is for — but
    /// the plan itself must never contradict the map that issued it.)
    #[test]
    fn routes_issued_at_epoch_k_are_valid_against_snapshot_k(
        seed in any::<u64>(),
        n in 4u8..=6,
        ops in proptest::collection::vec(any::<u64>(), 20..=60),
    ) {
        let cube = Hypercube::new(n);
        let mut provider =
            SafetyService::new(FaultConfig::fault_free(cube)).with_archive();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let wl = OpenLoop {
            requests: ops.len() as u64,
            churn_prob: 0.3,
            max_live_faults: usize::from(n - 1),
            ..OpenLoop::default()
        };
        let injections = open_loop_mix(cube, &wl, &mut rng);
        let mut trail = Vec::new();
        let mut planned = 0u64;
        for (inj, &op) in injections.iter().zip(&ops) {
            match *inj {
                Injection::Churn { node, fault, .. } => {
                    hypersafe::simkit::service::RouteProvider::apply_churn(
                        &mut provider, node, fault,
                    );
                }
                Injection::Submit { src, dst, .. } => {
                    let out = provider.attempt_traced(src, dst, &mut trail);
                    if let AttemptVerdict::Delivered { rung, hops } = out.verdict {
                        if rung == DeliveryRung::Detour {
                            continue; // planned on the live set, not a snapshot
                        }
                        let archive = provider.archived().expect("archive enabled");
                        let snap: &Arc<Epoch<SafetyState>> = &archive[out.epoch as usize];
                        prop_assert_eq!(snap.epoch, out.epoch);
                        if hops == 0 {
                            continue; // AlreadyThere records no trail
                        }
                        planned += 1;
                        prop_assert_eq!(trail.len() as u32, hops + 1);
                        prop_assert_eq!(*trail.first().unwrap(), src);
                        prop_assert_eq!(*trail.last().unwrap(), dst);
                        for w in trail.windows(2) {
                            prop_assert_eq!(
                                (w[0].raw() ^ w[1].raw()).count_ones(), 1,
                                "trail hops a non-edge: {:?}", trail
                            );
                        }
                        // Interior nodes are the map's own choices and
                        // must be healthy in the snapshot that planned
                        // them. Endpoints are exempt: a recovered-live
                        // source/destination may still be faulty in a
                        // lagging snapshot (§ the retry rung), and the
                        // algorithm never consults their own levels.
                        for &node in &trail[1..trail.len() - 1] {
                            prop_assert!(
                                !snap.data.cfg.node_faulty(node),
                                "epoch {} planned through its own fault {node}",
                                out.epoch
                            );
                        }
                    }
                }
                Injection::Cancel { .. } => {}
            }
            // Interleave publications off the op stream, so attempts
            // run against a mix of current and lagging epochs.
            if op.is_multiple_of(3) {
                hypersafe::simkit::service::RouteProvider::publish_next(&mut provider);
            }
        }
        // The generator keeps endpoints healthy and faults < n, so
        // snapshot-planned deliveries dominate; make sure the
        // property actually exercised trails.
        prop_assert!(planned > 0, "no snapshot-planned route was checked");
    }
}

/// Not a proptest: the rejected-request taxonomy stays closed — every
/// rejection carries one of the five typed reasons and the stats
/// counters agree with the records.
#[test]
fn typed_rejections_partition_the_stats() {
    let svc = soak(0xC0FFEE, 5, 400, 0.25);
    let mut by_reason = [0u64; 5];
    for (state, _, _, _, _) in svc.request_records() {
        if let ReqState::Done(Terminal::Rejected { reason }) = state {
            let slot = match reason {
                RejectReason::Overloaded => 0,
                RejectReason::Cancelled => 1,
                RejectReason::SourceFaulty => 2,
                RejectReason::DestinationFaulty => 3,
                RejectReason::Unreachable { .. } => 4,
            };
            by_reason[slot] += 1;
        }
    }
    let s = svc.stats();
    assert_eq!(
        by_reason,
        [
            s.rejected_overloaded,
            s.rejected_cancelled,
            s.rejected_source_faulty,
            s.rejected_destination_faulty,
            s.rejected_unreachable,
        ]
    );
}

/// Replays the archived service hard seeds from the shared corpus
/// (`service <n> <seed>` lines in `tests/corpus/dst_hard_seeds.txt`).
/// Each one produces an adversarial schedule that orders a same-tick
/// `Cancel` ahead of its own `Submit` — the schedule class that once
/// double-admitted a cancelled request and double-counted its terminal
/// rung. The full terminal/deadline contract must hold on every entry.
#[test]
fn corpus_service_hard_seeds_stay_green() {
    let corpus = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/corpus/dst_hard_seeds.txt"
    ))
    .expect("corpus file");
    let mut replayed = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("service ") else {
            continue;
        };
        let mut it = rest.split_whitespace();
        let n: u8 = it.next().unwrap().parse().expect("corpus dim");
        let seed = it.next().unwrap();
        let seed = u64::from_str_radix(seed.trim_start_matches("0x"), 16).expect("corpus seed");
        let svc = soak(seed, n, 300, 0.15);
        assert_eq!(svc.violations(), &[] as &[String], "service {n} {seed:#x}");
        assert_eq!(
            svc.stats().terminals(),
            svc.num_requests() as u64,
            "service {n} {seed:#x}: rung counters must partition the requests"
        );
        for (state, submit, deadline, done_at, _) in svc.request_records() {
            assert!(matches!(state, ReqState::Done(_)), "service {n} {seed:#x}");
            assert!(done_at <= deadline + 1 && done_at >= submit);
        }
        replayed += 1;
    }
    assert!(replayed >= 6, "corpus lost its service entries");
}
