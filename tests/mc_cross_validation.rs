//! Cross-validation of the model checker against the timed engine:
//! any engine schedule (FIFO or adversarial reorder/stretch) is one
//! interleaving of the untimed transition system, so every
//! actor-projection hash a real GS run passes through — after
//! `on_start` and after each delivered event — must be a member of
//! the checker's reachable projection set. A hash outside the set
//! would mean the abstraction in `simkit::mc` (untimed delivery,
//! no-op closure) fails to subsume some timed behavior.

use hypersafe::safety::{gs_engine_projections, mc_gs};
use hypersafe::simkit::{AdversarialScheduler, FifoScheduler, McConfig};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

fn q3_cfg(faults: &[u64]) -> FaultConfig {
    let cube = Hypercube::new(3);
    FaultConfig::with_node_faults(
        cube,
        FaultSet::from_nodes(cube, faults.iter().copied().map(NodeId::new)),
    )
}

/// The checker's reachable projection set for `cfg`, asserting the
/// exploration itself was clean and exhaustive.
fn reachable(cfg: &FaultConfig) -> HashSet<u128> {
    let mcfg = McConfig {
        collect_projections: true,
        ..McConfig::default()
    };
    let rep = mc_gs(cfg, &mcfg);
    assert!(rep.violation.is_none(), "{:?}", rep.violation);
    assert!(!rep.truncated, "state space truncated");
    rep.projections.expect("collect_projections was on")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO schedules on every single-fault Q_3 instance stay inside
    /// the checker's reachable set.
    #[test]
    fn fifo_schedules_are_reachable(f in 0u64..8) {
        let cfg = q3_cfg(&[f]);
        let mc = reachable(&cfg);
        let steps = gs_engine_projections(&cfg, Box::new(FifoScheduler));
        for (k, h) in steps.iter().enumerate() {
            prop_assert!(mc.contains(h), "fault {}: engine step {} left the reachable set", f, k);
        }
    }

    /// Adversarial reorder/stretch schedules on one- and two-fault
    /// Q_3 instances stay inside the checker's reachable set.
    #[test]
    fn adversarial_schedules_are_reachable(
        f1 in 0u64..8,
        f2 in 0u64..8,
        seed in any::<u64>(),
        stretch in 1u64..6,
    ) {
        let faults = if f1 == f2 { vec![f1] } else { vec![f1, f2] };
        let cfg = q3_cfg(&faults);
        let mc = reachable(&cfg);
        let sched = AdversarialScheduler::permute(seed).with_stretch(stretch);
        let steps = gs_engine_projections(&cfg, Box::new(sched));
        for (k, h) in steps.iter().enumerate() {
            prop_assert!(
                mc.contains(h),
                "faults {:?} seed {:#x}: engine step {} left the reachable set",
                faults, seed, k
            );
        }
    }
}
