//! End-to-end regression of every worked example in the paper, driven
//! through the public API exactly as a downstream user would.

use hypersafe::experiments::{fig1, fig2, fig3, fig4, fig5, safesets};
use hypersafe::safety::{
    gh_route, route, route_egs, run_egs, run_gh_gs, Condition, Decision, ExtendedSafetyMap,
    GhDecision, GhSafetyMap, SafetyMap,
};
use hypersafe::topology::{
    connectivity, FaultConfig, FaultSet, GeneralizedHypercube, Hypercube, LinkFaultSet, NodeId,
};

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

#[test]
fn figure1_full_regeneration() {
    let rep = fig1::run();
    assert_eq!(rep.name, "fig1");
    assert_eq!(rep.rows.len(), 16);
    // Four faulty rows, levels as in the figure.
    assert_eq!(rep.rows.iter().filter(|r| r[2] == "faulty").count(), 4);
}

#[test]
fn figure2_claims_hold_at_ci_scale() {
    let p = fig2::Fig2Params {
        n: 7,
        max_faults: 8,
        trials: 120,
        seed: 0xA11CE,
    };
    let rep = fig2::run(&p);
    assert!(rep.notes.iter().any(|s| s.contains("HOLDS")));
    // Mean rounds grow monotonically enough to be plotted but never
    // reach the worst case at this density.
    let last_mean: f64 = rep.rows.last().unwrap()[1].parse().unwrap();
    assert!(last_mean < 4.0);
}

#[test]
fn figure3_disconnection_behaviour() {
    let rep = fig3::run();
    assert_eq!(rep.rows.len(), 3);
    assert!(rep.rows[2][3].contains("FAILURE"));
}

#[test]
fn figure4_reconstruction_is_unique_enough() {
    let found = fig4::search();
    assert!(!found.is_empty());
    // Every reconstruction satisfies all the stated facts by
    // construction; spot-check one against the EGS API directly.
    let cfg = fig4::instance(&found[0]);
    assert!(fig4::consistent(&cfg));
}

#[test]
fn figure5_reconstruction_and_walk() {
    let rep = fig5::run();
    let notes = rep.notes.join("\n");
    assert!(notes.contains("010"));
    assert!(
        notes.contains("discrepancies"),
        "paper inconsistencies are documented"
    );
}

#[test]
fn section23_three_safe_sets() {
    let rep = safesets::run_example();
    // LH = ∅, SL = 9 members; WF sits between.
    assert_eq!(rep.rows[0][2], "0");
    let wf: usize = rep.rows[1][2].parse().unwrap();
    let sl: usize = rep.rows[2][2].parse().unwrap();
    assert!(wf <= sl && wf >= 8);
    assert_eq!(sl, 9);
}

#[test]
fn paper_narrated_paths_via_public_api() {
    // The two §3.2 walks, driven through the façade crate.
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
    );
    let map = SafetyMap::compute(&cfg);

    let r1 = route(&cfg, &map, n("1110"), n("0001"));
    assert!(matches!(
        r1.decision,
        Decision::Optimal {
            condition: Condition::C1,
            ..
        }
    ));
    assert_eq!(
        r1.path.unwrap().render(4),
        "1110 → 1111 → 1101 → 0101 → 0001"
    );

    let r2 = route(&cfg, &map, n("0001"), n("1100"));
    assert!(matches!(
        r2.decision,
        Decision::Optimal {
            condition: Condition::C2,
            ..
        }
    ));
    assert_eq!(r2.path.unwrap().render(4), "0001 → 0000 → 1000 → 1100");
}

/// §4.1 worked example: Fig. 1's cube with one *faulty link* added
/// (0101–0111). Both endpoints join `N2`: to everyone else they
/// advertise level 0 (they "are" faulty), while each keeps a healthier
/// self view. The narrated 1110 → 0001 walk, which used to pass
/// through 0101, reroutes around the link — still optimal — and a
/// message destined *to* an `N2` node is nevertheless delivered
/// (footnote 3's special-fault semantics).
#[test]
fn section41_egs_faulty_link_worked_example() {
    let cube = Hypercube::new(4);
    let nodes = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
    let mut links = LinkFaultSet::new();
    links.insert(n("0101"), n("0111"));
    let cfg = FaultConfig::with_faults(cube, nodes, links);

    let emap = ExtendedSafetyMap::compute(&cfg);
    for a in [n("0101"), n("0111")] {
        assert!(emap.is_n2(a), "{a} touches the faulty link");
        assert_eq!(emap.advertised_level(a), 0, "N2 advertises 0 to N1");
        assert_eq!(emap.own_level(a), 1, "its self view stays healthier");
    }
    // The fully safe corner of Fig. 1 is untouched by the link fault.
    for a in ["1000", "1010", "1100", "1110"].map(n) {
        assert!(!emap.is_n2(a));
        assert_eq!(emap.advertised_level(a), 4);
    }

    // The §3.2 walk detours around 0101 yet keeps its optimality class.
    let r = route_egs(&cfg, &emap, n("1110"), n("0001"));
    assert!(matches!(
        r.decision,
        Decision::Optimal {
            condition: Condition::C1,
            ..
        }
    ));
    let path = r.path.expect("delivered");
    assert_eq!(path.render(4), "1110 → 1100 → 1000 → 0000 → 0001");
    assert!(
        !path.nodes().iter().any(|&a| emap.is_n2(a)),
        "N2 nodes are never intermediates"
    );

    // Footnote 3: 0101 is unusable as an intermediate but reachable as
    // a destination.
    let to_n2 = route_egs(&cfg, &emap, n("1101"), n("0101"));
    assert!(to_n2.delivered);
    assert_eq!(to_n2.path.unwrap().render(4), "1101 → 0101");

    // The distributed EGS protocol reaches the same two-view fixed
    // point as the centralized construction.
    let (dmap, stats) = run_egs(&cfg);
    for a in cube.nodes() {
        assert_eq!(dmap.advertised_level(a), emap.advertised_level(a), "{a}");
        assert_eq!(dmap.own_level(a), emap.own_level(a), "{a}");
    }
    assert_eq!(stats.rounds_run, 3, "n - 1 rounds, as for plain GS");
}

/// §4.2 worked example on GH(3,3,3) — Def. 4 run on a generalized
/// hypercube none of whose radices is 2. Three faults placed at the
/// mutual-distance-2 triple {011, 101, 110} dent the safety levels of
/// exactly the five nodes adjacent to ≥ 2 of them; everything else
/// stays fully safe, routing from a safe source is optimal, and the
/// distributed protocol agrees with the centralized fixed point.
#[test]
fn section42_gh333_worked_example() {
    let gh = GeneralizedHypercube::from_product(&[3, 3, 3]);
    assert_eq!(gh.num_nodes(), 27);
    assert_eq!(gh.degree(), 6, "each node has (3-1)·3 neighbors");

    let faults = gh.fault_set_from_strs(&["011", "101", "110"]);
    let map = GhSafetyMap::compute(&gh, &faults);

    // The dented nodes, by Def. 4's digit counting: 000 sees two
    // faulty neighbors in *every* pair of dimensions (level 2), while
    // 001/010/100/111 each lose one level.
    let expect = [("000", 2), ("001", 1), ("010", 1), ("100", 1), ("111", 1)];
    for (s, lvl) in expect {
        assert_eq!(map.level(gh.parse(s).unwrap()), lvl, "{s}");
    }
    // Everyone else (27 − 3 faulty − 5 dented = 19) is fully safe.
    assert_eq!(map.safe_nodes().len(), 19);
    for a in gh.nodes() {
        let s = gh.format(a);
        if !faults.contains(NodeId::new(a.raw())) && !expect.iter().any(|(e, _)| *e == s) {
            assert_eq!(map.level(a), 3, "{s}");
        }
    }

    // A safe source routes optimally straight through the dent.
    let r = gh_route(
        &gh,
        &map,
        &faults,
        gh.parse("222").unwrap(),
        gh.parse("000").unwrap(),
    );
    assert_eq!(r.decision, GhDecision::Optimal);
    assert!(r.delivered);
    let walk: Vec<String> = r.nodes.unwrap().iter().map(|&a| gh.format(a)).collect();
    assert_eq!(walk, ["222", "220", "200", "000"], "H = 3 hops, no detour");

    // Distributed GH-GS reaches the same fixed point.
    let (dmap, stats) = run_gh_gs(&gh, &faults);
    for a in gh.nodes() {
        assert_eq!(dmap.level(a), map.level(a), "{}", gh.format(a));
    }
    assert_eq!(stats.rounds_run, 3);
}

#[test]
fn fig3_cross_partition_is_source_detected_not_lost() {
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
    );
    let map = SafetyMap::compute(&cfg);
    assert!(connectivity::is_disconnected(&cfg));
    for s in cfg.healthy_nodes() {
        for d in cfg.healthy_nodes() {
            if s == d {
                continue;
            }
            let res = route(&cfg, &map, s, d);
            if !connectivity::connected(&cfg, s, d) {
                assert_eq!(res.decision, Decision::Failure, "{s} → {d}");
            } else if !matches!(res.decision, Decision::Failure) {
                // With m = n faults the source may legitimately abort
                // even for connected pairs (the guarantee needs < n
                // faults); but whenever it *accepts*, it must deliver.
                assert!(res.delivered, "{s} → {d}");
            }
        }
    }
}
