//! End-to-end regression of every worked example in the paper, driven
//! through the public API exactly as a downstream user would.

use hypersafe::experiments::{fig1, fig2, fig3, fig4, fig5, safesets};
use hypersafe::safety::{route, Condition, Decision, SafetyMap};
use hypersafe::topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId};

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

#[test]
fn figure1_full_regeneration() {
    let rep = fig1::run();
    assert_eq!(rep.name, "fig1");
    assert_eq!(rep.rows.len(), 16);
    // Four faulty rows, levels as in the figure.
    assert_eq!(rep.rows.iter().filter(|r| r[2] == "faulty").count(), 4);
}

#[test]
fn figure2_claims_hold_at_ci_scale() {
    let p = fig2::Fig2Params {
        n: 7,
        max_faults: 8,
        trials: 120,
        seed: 0xA11CE,
    };
    let rep = fig2::run(&p);
    assert!(rep.notes.iter().any(|s| s.contains("HOLDS")));
    // Mean rounds grow monotonically enough to be plotted but never
    // reach the worst case at this density.
    let last_mean: f64 = rep.rows.last().unwrap()[1].parse().unwrap();
    assert!(last_mean < 4.0);
}

#[test]
fn figure3_disconnection_behaviour() {
    let rep = fig3::run();
    assert_eq!(rep.rows.len(), 3);
    assert!(rep.rows[2][3].contains("FAILURE"));
}

#[test]
fn figure4_reconstruction_is_unique_enough() {
    let found = fig4::search();
    assert!(!found.is_empty());
    // Every reconstruction satisfies all the stated facts by
    // construction; spot-check one against the EGS API directly.
    let cfg = fig4::instance(&found[0]);
    assert!(fig4::consistent(&cfg));
}

#[test]
fn figure5_reconstruction_and_walk() {
    let rep = fig5::run();
    let notes = rep.notes.join("\n");
    assert!(notes.contains("010"));
    assert!(
        notes.contains("discrepancies"),
        "paper inconsistencies are documented"
    );
}

#[test]
fn section23_three_safe_sets() {
    let rep = safesets::run_example();
    // LH = ∅, SL = 9 members; WF sits between.
    assert_eq!(rep.rows[0][2], "0");
    let wf: usize = rep.rows[1][2].parse().unwrap();
    let sl: usize = rep.rows[2][2].parse().unwrap();
    assert!(wf <= sl && wf >= 8);
    assert_eq!(sl, 9);
}

#[test]
fn paper_narrated_paths_via_public_api() {
    // The two §3.2 walks, driven through the façade crate.
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]),
    );
    let map = SafetyMap::compute(&cfg);

    let r1 = route(&cfg, &map, n("1110"), n("0001"));
    assert!(matches!(
        r1.decision,
        Decision::Optimal {
            condition: Condition::C1,
            ..
        }
    ));
    assert_eq!(
        r1.path.unwrap().render(4),
        "1110 → 1111 → 1101 → 0101 → 0001"
    );

    let r2 = route(&cfg, &map, n("0001"), n("1100"));
    assert!(matches!(
        r2.decision,
        Decision::Optimal {
            condition: Condition::C2,
            ..
        }
    ));
    assert_eq!(r2.path.unwrap().render(4), "0001 → 0000 → 1000 → 1100");
}

#[test]
fn fig3_cross_partition_is_source_detected_not_lost() {
    let cube = Hypercube::new(4);
    let cfg = FaultConfig::with_node_faults(
        cube,
        FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]),
    );
    let map = SafetyMap::compute(&cfg);
    assert!(connectivity::is_disconnected(&cfg));
    for s in cfg.healthy_nodes() {
        for d in cfg.healthy_nodes() {
            if s == d {
                continue;
            }
            let res = route(&cfg, &map, s, d);
            if !connectivity::connected(&cfg, s, d) {
                assert_eq!(res.decision, Decision::Failure, "{s} → {d}");
            } else if !matches!(res.decision, Decision::Failure) {
                // With m = n faults the source may legitimately abort
                // even for connected pairs (the guarantee needs < n
                // faults); but whenever it *accepts*, it must deliver.
                assert!(res.delivered, "{s} → {d}");
            }
        }
    }
}
