//! Unicast over a lossy channel: the paper's reliable-link assumption
//! relaxed. Every link drops 5% of its messages (plus jitter and the
//! occasional duplicate); the ACK/retransmit layer in
//! `hypersafe-simkit` restores exactly-once in-order delivery, and the
//! paper's routing walks the same path it would on clean links.
//!
//! ```text
//! cargo run --example lossy_unicast
//! ```

use hypersafe::safety::{route, run_gs_reliable, run_unicast_lossy, LossyOutcome, SafetyMap};
use hypersafe::simkit::{ChannelModel, ReliableConfig};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};

fn main() {
    // The paper's Fig. 1 instance again: 4-cube, four faulty nodes.
    let cube = Hypercube::new(4);
    let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
    let cfg = FaultConfig::with_node_faults(cube, faults);

    // A channel that loses 5% of messages, delays by up to 2 extra
    // ticks, and duplicates 1% — seeded, so every run is identical.
    let channel = ChannelModel::lossy(42, 0.05)
        .with_jitter(2)
        .with_duplication(0.01);

    // 1. Distributed GS over the lossy channel: the ACK/retransmit
    //    layer makes it converge to the same fixed point the
    //    centralized evaluator computes.
    let gs = run_gs_reliable(
        &cfg,
        channel.clone(),
        ReliableConfig::default(),
        1,
        1_000_000,
    );
    assert!(gs.quiescent);
    assert_eq!(gs.map.store(), SafetyMap::compute(&cfg).store());
    println!(
        "GS converged under 5% loss: {} messages delivered, {} lost in transit, \
         {} retransmitted, {} ACKs",
        gs.stats.delivered, gs.stats.lost, gs.stats.retransmitted, gs.stats.acked
    );

    // 2. The paper's first worked unicast, 1110 → 0001 (H = 4), driven
    //    over the same lossy channel.
    let s = NodeId::from_binary("1110").unwrap();
    let d = NodeId::from_binary("0001").unwrap();
    let run = run_unicast_lossy(
        &cfg,
        &gs.map,
        s,
        d,
        1,
        channel,
        ReliableConfig::default(),
        1_000_000,
    );
    match run.outcome {
        LossyOutcome::Delivered { retransmits, delay } => {
            let trail = run.trail.expect("delivered runs record the trail");
            let rendered: Vec<String> = trail.iter().map(|a| a.to_binary(4)).collect();
            println!("delivered via {}", rendered.join(" → "));
            println!("  {} retransmissions, virtual delay {}", retransmits, delay);
        }
        other => panic!("feasible unicast must survive 5% loss, got {other:?}"),
    }
    assert_eq!(run.duplicate_deliveries, 0, "actors never see duplicates");

    // The walk matches the lossless route hop for hop.
    let lossless = route(&cfg, &gs.map, s, d);
    println!(
        "same path as on clean links: {}",
        lossless.path.expect("feasible").render(4)
    );
}
