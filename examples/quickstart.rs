//! Quickstart: build a faulty hypercube, compute safety levels, route.
//!
//! Reproduces the paper's Fig. 1 walk end to end:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hypersafe::safety::{route_traced, Condition, Decision, SafetyMap};
use hypersafe::simkit::Trace;
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, NodeId};

fn main() {
    // A 4-cube with the paper's Fig. 1 fault set.
    let cube = Hypercube::new(4);
    let faults = FaultSet::from_binary_strs(cube, &["0011", "0100", "0110", "1001"]);
    let cfg = FaultConfig::with_node_faults(cube, faults);

    // Safety levels: the unique fixed point of Definition 1, computed
    // by (n − 1)-round neighbor exchange.
    let map = SafetyMap::compute(&cfg);
    println!("safety levels after {} rounds:", map.rounds());
    for a in cube.nodes() {
        let tag = if cfg.node_faulty(a) {
            " (faulty)"
        } else if map.is_safe(a) {
            " (safe)"
        } else {
            ""
        };
        println!("  {}  level {}{}", a.to_binary(4), map.level(a), tag);
    }

    // Unicast 1110 → 0001: the source's level (4) covers the Hamming
    // distance (4), so condition C1 admits an optimal route.
    let s = NodeId::from_binary("1110").unwrap();
    let d = NodeId::from_binary("0001").unwrap();
    let mut trace = Trace::enabled();
    let res = route_traced(&cfg, &map, s, d, &mut trace);

    match res.decision {
        Decision::Optimal {
            condition: Condition::C1,
            ..
        } => {
            println!(
                "\nC1 holds: S(s) = {} ≥ H = {}",
                map.level(s),
                s.distance(d)
            );
        }
        other => println!("\ndecision: {other:?}"),
    }
    let path = res.path.expect("feasible");
    println!("route: {}", path.render(4));
    println!(
        "optimal: {} · delivered: {}",
        path.is_optimal(),
        res.delivered
    );
    println!("\nhop trace:\n{}", trace.render());
}
