//! Faulty links and the EGS dual view (paper §4.1, Fig. 4).
//!
//! A node touching a faulty link advertises itself as faulty (the `N2`
//! class) yet keeps a private safety level for its own unicasts; the
//! rest of the network detours around it automatically.
//!
//! ```text
//! cargo run --example faulty_links
//! ```

use hypersafe::safety::{route_egs, Decision, ExtendedSafetyMap};
use hypersafe::topology::{FaultConfig, FaultSet, Hypercube, LinkFaultSet, NodeId};

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

fn main() {
    // One of the 18 Fig.-4 reconstructions found by `repro fig4`'s
    // exhaustive search (the harness pins a different, equally valid
    // one): four faulty nodes plus the faulty link (1000, 1001).
    let cube = Hypercube::new(4);
    let nodes = FaultSet::from_binary_strs(cube, &["0000", "0010", "0101", "1100"]);
    let mut links = LinkFaultSet::new();
    links.insert(n("1000"), n("1001"));
    let cfg = FaultConfig::with_faults(cube, nodes, links);

    let emap = ExtendedSafetyMap::compute(&cfg);
    println!("node  advertised  own  class");
    for a in cube.nodes() {
        let class = if cfg.node_faulty(a) {
            "faulty"
        } else if emap.is_n2(a) {
            "N2 (touches faulty link)"
        } else {
            "N1"
        };
        println!(
            "{}        {}      {}  {}",
            a.to_binary(4),
            emap.advertised_level(a),
            emap.own_level(a),
            class
        );
    }

    // The paper's walk: 1101 → 1000 has both preferred neighbors
    // reading as faulty; the spare neighbor 1111 (level 4 ≥ H + 1)
    // admits a suboptimal route of length H + 2 = 4.
    let res = route_egs(&cfg, &emap, n("1101"), n("1000"));
    println!("\nunicast 1101 → 1000 (H = 2):");
    match res.decision {
        Decision::Suboptimal { .. } => println!("  suboptimal via a spare neighbor (C3)"),
        other => println!("  decision {other:?}"),
    }
    let p = res.path.expect("routed");
    println!("  path {} (length {})", p.render(4), p.len());
    println!("  delivered: {}", res.delivered);

    // An N2 node still originates unicasts using its own view.
    let res = route_egs(&cfg, &emap, n("1001"), n("1011"));
    println!(
        "\nunicast 1001 → 1011 from the N2 node (own level {}): delivered = {}, path {}",
        emap.own_level(n("1001")),
        res.delivered,
        res.path.expect("routed").render(4)
    );
}
