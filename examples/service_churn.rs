//! The resilient routing service under fault churn: requests route
//! against immutable epoch snapshots of the safety map while node
//! faults and recoveries mutate the live cube, every request runs the
//! deadline-bounded lifecycle, and outcomes degrade down the ladder
//! (optimal → suboptimal → detour → retry → typed rejection) instead
//! of failing on stale state. See DESIGN.md §12 and EXPERIMENTS.md
//! E26 for the full soak.
//!
//! ```text
//! cargo run --release --example service_churn
//! ```

use hypersafe::safety::SafetyService;
use hypersafe::simkit::{
    AdversarialScheduler, Injection, ReqState, RoutingService, ServiceConfig, Terminal,
};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{open_loop_mix, OpenLoop};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // An 8-cube under open-loop load: route submits with deadlines,
    // interleaved node fault/recover churn, and occasional caller
    // cancellations — all seeded, so every run is identical.
    let cube = Hypercube::new(8);
    let wl = OpenLoop {
        requests: 20_000,
        churn_prob: 0.08,
        max_live_faults: 7,
        cancel_prob: 0.02,
        ..OpenLoop::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0x05E5_71CE);
    let injections = open_loop_mix(cube, &wl, &mut rng);
    let submits = injections
        .iter()
        .filter(|i| matches!(i, Injection::Submit { .. }))
        .count();
    println!(
        "workload: {} events ({} submits) on an 8-cube, up to 7 live faults",
        injections.len(),
        submits
    );

    // The service: epoch snapshots of (FaultConfig, SafetyMap) publish
    // 4 ticks after each churn event (the restabilization window), so
    // requests in flight during the lag really do route on stale maps
    // — that is what the retry rung is for. Same-tick event order is
    // handed to the DST adversarial scheduler to show the outcome does
    // not depend on a friendly schedule.
    let provider = SafetyService::new(FaultConfig::fault_free(cube));
    let mut svc = RoutingService::with_scheduler(
        provider,
        ServiceConfig::default(),
        Box::new(AdversarialScheduler::permute(7)),
    );
    svc.load(&injections);
    svc.run();

    println!("\n{}", svc.stats().render());

    // The lifecycle contract, checked live: every request reached
    // exactly one terminal state, nothing outlived its deadline by
    // more than the documented +1 tick, and the safety-map invariant
    // held at every epoch publication.
    let mut worst_slack = 0;
    for (state, submit, deadline, done_at, _) in svc.request_records() {
        let ReqState::Done(terminal) = state else {
            panic!("request left non-terminal: {state:?}");
        };
        assert!(done_at >= submit && done_at <= deadline + 1);
        if matches!(terminal, Terminal::TimedOut) {
            worst_slack = worst_slack.max(done_at - deadline);
        }
    }
    assert_eq!(svc.stats().terminals(), submits as u64);
    assert!(svc.violations().is_empty(), "{:?}", svc.violations());
    println!(
        "\nall {} requests terminal, {} epochs published, zero invariant \
         violations, final tick {}",
        submits,
        svc.stats().epochs_published,
        svc.now()
    );

    let s = svc.stats();
    println!(
        "ladder: optimal {} | suboptimal {} | detour {} | retry {} (after {} \
         retry attempts) | rejected {} | timed out {}",
        s.delivered_optimal,
        s.degraded_suboptimal,
        s.degraded_detour,
        s.degraded_retry,
        s.retries,
        s.rejected_overloaded
            + s.rejected_cancelled
            + s.rejected_source_faulty
            + s.rejected_destination_faulty
            + s.rejected_unreachable,
        s.timed_out,
    );
}
