//! A longer-running scenario: a 7-cube "fleet" under continuous fault
//! churn, comparing the three §2.2 maintenance strategies and routing
//! live traffic over the discrete-event engine.
//!
//! ```text
//! cargo run --release --example fleet_simulation [seed]
//! ```

use hypersafe::safety::unicast_distributed::run_unicast;
use hypersafe::safety::{replay, run_gs, SafetyMap, Strategy};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{random_pair, uniform_faults, Sweep};
use hypersafe_experiments::maintenance_exp::{random_timeline, MaintenanceParams};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);
    let cube = Hypercube::new(7);

    // Phase 1: a static snapshot — inject faults, converge GS, then
    // push real unicast traffic through the event engine.
    println!("phase 1: static snapshot (7-cube, 6 faults, 200 unicasts)");
    let sweep = Sweep::new(1, seed);
    let mut rng = sweep.trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 6, &mut rng));
    let gs = run_gs(&cfg);
    println!(
        "  GS converged in {} rounds, {} messages",
        gs.map.rounds(),
        gs.stats.messages
    );
    let map = SafetyMap::compute(&cfg);
    let mut delivered = 0u32;
    let mut total_hops = 0u64;
    let mut messages = 0u64;
    for _ in 0..200 {
        let (s, d) = random_pair(&cfg, &mut rng);
        let run = run_unicast(&cfg, &map, s, d, 1);
        if let Some(trail) = &run.trail {
            delivered += 1;
            total_hops += (trail.len() - 1) as u64;
        }
        messages += run.messages;
    }
    println!(
        "  delivered {delivered}/200 unicasts · {total_hops} hops · {messages} network messages"
    );

    // Phase 2: fault churn — replay one random timeline under each
    // maintenance strategy.
    println!("\nphase 2: fault churn (400 events, 20% churn)");
    let params = MaintenanceParams {
        n: 7,
        events: 400,
        churn_pct: 20,
        period: 40,
        trials: 1,
        seed,
    };
    let mut rng = Sweep::new(1, seed ^ 0xC0FFEE).trial_rng(0);
    let timeline = random_timeline(&params, &mut rng);
    println!(
        "  timeline: {} events over {} ticks",
        timeline.events().len(),
        timeline.duration()
    );
    for (name, strat) in [
        ("demand-driven ", Strategy::DemandDriven),
        ("periodic T=40 ", Strategy::Periodic { period: 40 }),
        ("state-change  ", Strategy::StateChangeDriven),
    ] {
        let r = replay(cube, &timeline, strat);
        println!(
            "  {name}: {:>3} GS runs · {:>8} GS messages · {:>3} stale unicasts · {}/{} delivered",
            r.gs_runs, r.gs_messages, r.stale_unicasts, r.delivered, r.unicasts
        );
    }
}
