//! The full stack the paper assumes, end to end: heartbeat fault
//! detection (assumption 2, built not assumed) → distributed GS →
//! unicast + broadcast, all as message-passing protocols with costs
//! accounted.
//!
//! ```text
//! cargo run --example detection_pipeline [seed]
//! ```

use hypersafe::safety::broadcast_distributed::run_broadcast;
use hypersafe::safety::unicast_distributed::run_unicast;
use hypersafe::safety::{detect, run_gs, DetectorParams, SafetyMap};
use hypersafe::topology::{FaultConfig, Hypercube, NodeId};
use hypersafe::workloads::{random_pair, uniform_faults, Sweep};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let cube = Hypercube::new(6);
    let mut rng = Sweep::new(1, seed).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 5, &mut rng));
    println!(
        "6-cube, faults: {:?}",
        cfg.node_faults()
            .iter()
            .map(|a| a.to_binary(6))
            .collect::<Vec<_>>()
    );

    // Stage 1 — detection: every node learns its neighbors' status by
    // heartbeats alone.
    let det = detect(&cfg, DetectorParams::default());
    let (fneg, fpos) = det.accuracy(&cfg);
    println!(
        "\nstage 1 · heartbeat detection: {} messages over {} ticks, \
         false negatives {fneg}, false positives {fpos}",
        det.messages, det.duration
    );

    // Stage 2 — GLOBAL_STATUS: levels converge by neighbor exchange.
    let gs = run_gs(&cfg);
    println!(
        "stage 2 · GS: {} active rounds, {} messages; safe nodes: {}",
        gs.map.rounds(),
        gs.stats.messages,
        gs.map.safe_count()
    );

    // Stage 3 — traffic: distributed unicasts and one broadcast.
    let map = SafetyMap::compute(&cfg);
    let mut delivered = 0;
    let mut msgs = 0;
    for _ in 0..50 {
        let (s, d) = random_pair(&cfg, &mut rng);
        let run = run_unicast(&cfg, &map, s, d, 1);
        delivered += run.trail.is_some() as u32;
        msgs += run.messages;
    }
    println!("stage 3 · unicast: {delivered}/50 delivered, {msgs} messages");

    let src = cfg
        .healthy_nodes()
        .find(|&a| map.is_safe(a))
        .unwrap_or(NodeId::ZERO);
    let b = run_broadcast(&cfg, &map, src, 1);
    println!(
        "stage 3 · broadcast from safe {}: coverage {}/{} in {} steps, {} messages",
        src.to_binary(6),
        b.coverage(),
        cfg.healthy_count(),
        b.steps,
        b.messages
    );
}
