//! Safety levels and routing in a generalized hypercube (paper §4.2,
//! Fig. 5): a 2 × 3 × 2 `GH` where every dimension-`i` "row" of `m_i`
//! nodes is a clique and a preferred hop resolves a whole coordinate.
//!
//! ```text
//! cargo run --example generalized_hypercube
//! ```

use hypersafe::safety::gh_safety::GhSafetyMap;
use hypersafe::safety::gh_unicast::{gh_route, GhDecision};
use hypersafe::topology::{GeneralizedHypercube, NodeId};

fn main() {
    // The Fig.-5 reconstruction pinned by `repro fig5`.
    let gh = GeneralizedHypercube::from_product(&[2, 3, 2]);
    let faults = gh.fault_set_from_strs(&["011", "100", "111", "121"]);
    let map = GhSafetyMap::compute(&gh, &faults);

    println!(
        "GH(2,3,2): {} nodes, degree {}",
        gh.num_nodes(),
        gh.degree()
    );
    println!("\nnode  level  status");
    for a in gh.nodes() {
        let status = if faults.contains(NodeId::new(a.raw())) {
            "faulty"
        } else if map.is_safe(a) {
            "safe"
        } else {
            "unsafe"
        };
        println!(" {}     {}    {}", gh.format(a), map.level(a), status);
    }

    // The paper's walk: 010 → 101 differ in all three coordinates.
    let s = gh.parse("010").unwrap();
    let d = gh.parse("101").unwrap();
    println!("\nunicast 010 → 101 (distance {}):", gh.distance(s, d));
    let res = gh_route(&gh, &map, &faults, s, d);
    assert_eq!(res.decision, GhDecision::Optimal);
    let walk: Vec<String> = res
        .nodes
        .expect("routed")
        .iter()
        .map(|&a| gh.format(a))
        .collect();
    println!("  optimal walk: {}", walk.join(" → "));
    println!("  delivered: {}", res.delivered);

    // Eligibility narration, as in the paper: the dimension-0 neighbor
    // is faulty, the dimension-2 neighbor is under-safe, dimension 1
    // carries the message.
    println!("\nsource's neighbor eligibility (need level ≥ H − 1 = 2):");
    for i in 0..gh.dim() {
        for b in gh.neighbors_along(s, i) {
            println!(
                "  dim {}: {} level {}{}",
                i,
                gh.format(b),
                map.level(b),
                if map.level(b) >= 2 {
                    "  ← eligible"
                } else {
                    ""
                }
            );
        }
    }
}
