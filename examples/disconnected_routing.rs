//! Routing in a *disconnected* hypercube — the paper's headline
//! capability (§3.3, Fig. 3): the source locally detects when the
//! destination lies in another component and aborts for free, while
//! traffic inside each component still routes optimally.
//!
//! ```text
//! cargo run --example disconnected_routing
//! ```

use hypersafe::baselines::{LeeHayesStatus, WuFernandezStatus};
use hypersafe::safety::{route, Decision, SafetyMap};
use hypersafe::topology::{connectivity, FaultConfig, FaultSet, Hypercube, NodeId};

fn n(s: &str) -> NodeId {
    NodeId::from_binary(s).unwrap()
}

fn main() {
    // Fig. 3: faults {0110, 1010, 1100, 1111} isolate node 1110.
    let cube = Hypercube::new(4);
    let faults = FaultSet::from_binary_strs(cube, &["0110", "1010", "1100", "1111"]);
    let cfg = FaultConfig::with_node_faults(cube, faults);

    let comps = connectivity::components(&cfg);
    println!("the faulty cube splits into {} parts:", comps.len());
    for c in &comps {
        let names: Vec<String> = c.iter().map(|a| a.to_binary(4)).collect();
        println!("  {{{}}}", names.join(", "));
    }

    // Safe-node schemes are provably dead here (Theorem 4).
    let lh = LeeHayesStatus::compute(&cfg);
    let wf = WuFernandezStatus::compute(&cfg);
    println!(
        "\nTheorem 4: Lee-Hayes safe set empty: {} · Wu-Fernandez safe set empty: {}",
        lh.fully_unsafe(),
        wf.fully_unsafe()
    );

    // Safety levels keep working.
    let map = SafetyMap::compute(&cfg);
    let cases = [("0101", "0000"), ("0111", "1011"), ("0111", "1110")];
    println!();
    for (s, d) in cases {
        let res = route(&cfg, &map, n(s), n(d));
        match res.decision {
            Decision::Failure => {
                println!("{s} → {d}: infeasible — detected at the source, zero messages sent");
            }
            dec => {
                let p = res.path.expect("routed");
                println!(
                    "{s} → {d}: {:?}, path {} (length {} = H{})",
                    dec,
                    p.render(4),
                    p.len(),
                    if p.is_optimal() { "" } else { " + 2" }
                );
            }
        }
    }

    // Every unicast out of the marooned node aborts locally.
    let isolated = n("1110");
    let aborts = cfg
        .healthy_nodes()
        .filter(|&d| d != isolated)
        .filter(|&d| matches!(route(&cfg, &map, isolated, d).decision, Decision::Failure))
        .count();
    println!(
        "\nunicasts from isolated 1110: {aborts}/{} abort at the source",
        cfg.healthy_count() - 1
    );
}
