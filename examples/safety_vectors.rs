//! Safety *vectors* vs scalar safety levels vs the exact oracle — the
//! approximation-quality story on one instance.
//!
//! ```text
//! cargo run --example safety_vectors [seed]
//! ```

use hypersafe::safety::{source_decision, Decision, ExactReach, SafetyMap, SafetyVectorMap};
use hypersafe::topology::{FaultConfig, Hypercube};
use hypersafe::workloads::{uniform_faults, Sweep};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1813);
    let cube = Hypercube::new(6);
    let mut rng = Sweep::new(1, seed).trial_rng(0);
    let cfg = FaultConfig::with_node_faults(cube, uniform_faults(cube, 9, &mut rng));
    println!(
        "6-cube, 9 faults: {:?}\n",
        cfg.node_faults()
            .iter()
            .map(|a| a.to_binary(6))
            .collect::<Vec<_>>()
    );

    let map = SafetyMap::compute(&cfg);
    let vmap = SafetyVectorMap::compute(&cfg);
    let ex = ExactReach::compute(&cfg);

    println!("node     level  vector(1..6)  exact(1..6)");
    for a in cfg.healthy_nodes() {
        let vect: String = (1..=6)
            .map(|k| if vmap.covers(a, k) { '1' } else { '0' })
            .collect();
        let exact: String = ex
            .reach_vector(a)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        // Show only nodes where the three representations differ.
        let scalar_prefix: String = (1..=6)
            .map(|k| if k <= map.level(a) { '1' } else { '0' })
            .collect();
        if vect != scalar_prefix || vect != exact {
            println!(
                "{}      {}    {}        {}",
                a.to_binary(6),
                map.level(a),
                vect,
                exact
            );
        }
    }

    // Admission-rate comparison over all healthy pairs.
    let mut feasible = 0u32;
    let mut scalar = 0u32;
    let mut vector = 0u32;
    let mut total = 0u32;
    for s in cfg.healthy_nodes() {
        for d in cfg.healthy_nodes() {
            if s == d {
                continue;
            }
            total += 1;
            feasible += ex.optimal_path_exists(s, d) as u32;
            scalar += matches!(source_decision(&map, s, d), Decision::Optimal { .. }) as u32;
            vector += vmap.admits_optimal(&cfg, s, d) as u32;
        }
    }
    println!("\nall {total} healthy pairs:");
    println!("  oracle-feasible optimal routes : {feasible}");
    println!("  scalar C1/C2 admits            : {scalar}");
    println!("  vector test admits             : {vector}");
    println!(
        "\nthe vector (n bits, n−1 rounds) recovers {} of the {} pairs the scalar leaves on the table",
        vector - scalar,
        feasible - scalar
    );
}
